//! The SDN controller: PacketIn handling (the Dispatcher algorithm of paper
//! Fig. 7), flow installation and idle scale-down. The deployment pipeline
//! itself (Pull → Create → Scale-Up → poll port) lives in
//! [`crate::dispatcher`] as per-deployment state machines; the event loop
//! drives everything through the single
//! [`Controller::next_wakeup`]/[`Controller::on_wakeup`] surface.
//!
//! The controller *owns* the cluster backends and the registry routing — just
//! like the paper's Ryu application holds the Docker/Kubernetes client
//! handles — and communicates with the switch purely through
//! [`ControllerOutput`] messages (`FlowMod`s and buffered-packet releases)
//! stamped with the virtual time at which they are emitted. The surrounding
//! event loop (the `testbed` crate) delivers them with the control-channel
//! latency applied.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cluster::{
    ClusterBackend, ClusterKind, ResourceAllocation, ResourceRequest, ServiceStatus, SiteCapacity,
};
use registry::RegistrySet;
use simcore::{DetHashMap, SimDuration, SimTime};
use simnet::openflow::{Action, BufferId, FlowMatch, FlowSpec, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

use crate::catalog::{ServiceCatalog, ServiceId};
use crate::dispatcher::{
    reference, AdmissionError, DeployError, DeployPhaseKind, Dispatcher, MachineOutcome, StepCtx,
    Waiter,
};
use crate::flowmemory::{FlowKey, FlowMemory};
use crate::predictor::{NoPrediction, Predictor};
use crate::scheduler::{
    ClusterId, ClusterView, GlobalScheduler, LocalScheduler, NearestWaiting, RoundRobinLocal,
    SchedulingContext,
};

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Decision-making time per PacketIn (Ryu app processing).
    pub processing_delay: SimDuration,
    /// Port-open polling interval ("the controller continuously tests if the
    /// respective port is open", paper §VI).
    pub probe_interval: SimDuration,
    /// Give up on a deployment if the port never opens within this horizon.
    pub probe_timeout: SimDuration,
    /// Idle timeout for flows installed *in the switch* — kept low because
    /// the FlowMemory can always re-install (paper §V).
    pub switch_idle_timeout: SimDuration,
    /// Idle timeout of memorized flows (longer than the switch's).
    pub memory_idle_timeout: SimDuration,
    /// Scale service instances to zero once no memorized flow references
    /// them (paper §V's second purpose of the timeouts).
    pub scale_down_idle: bool,
    /// Remove the service objects entirely (Fig. 4's Remove phase) after a
    /// service has been scaled to zero for this long; `None` keeps created
    /// services around forever (cheap: scaled-to-zero services only hold
    /// API objects / stopped containers).
    pub remove_after: Option<SimDuration>,
    /// Priority of installed redirect flows.
    pub flow_priority: u16,
    /// How many times to retry a failed deployment phase (transient cluster
    /// or registry errors) before falling back to the cloud.
    pub deploy_retries: u32,
    /// Back-off between retries.
    pub retry_backoff: SimDuration,
    /// Replica autoscaling (Fahs et al.'s Voilà line of work, the paper's
    /// \[18\]): keep about this many live client flows per replica; `None`
    /// disables autoscaling (the paper's evaluated setting).
    pub autoscale_flows_per_replica: Option<u32>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            processing_delay: SimDuration::from_micros(500),
            probe_interval: SimDuration::from_millis(50),
            probe_timeout: SimDuration::from_secs(120),
            switch_idle_timeout: SimDuration::from_secs(10),
            memory_idle_timeout: SimDuration::from_secs(60),
            scale_down_idle: true,
            remove_after: None,
            flow_priority: 100,
            deploy_retries: 2,
            retry_backoff: SimDuration::from_millis(250),
            autoscale_flows_per_replica: None,
        }
    }
}

/// One of the (possibly several) switches the controller manages — the
/// "distributed" in the paper's title; the paper speaks of instructing "the
/// switch(es)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub usize);

/// The default single-switch setup's only switch.
pub const INGRESS: SwitchId = SwitchId(0);

/// A message from the controller to a switch, stamped with emission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerOutput {
    /// Install (or replace) the flow entry described by `spec` — feed the
    /// spec straight into [`simnet::Switch::flow_mod`].
    FlowMod {
        at: SimTime,
        switch: SwitchId,
        spec: FlowSpec,
    },
    /// Release a buffered packet through the flow table (`OFPP_TABLE`).
    ReleaseViaTable {
        at: SimTime,
        switch: SwitchId,
        buffer_id: BufferId,
    },
    /// Give up on a buffered packet.
    DropBuffered {
        at: SimTime,
        switch: SwitchId,
        buffer_id: BufferId,
    },
    /// Tear down every installed entry matching `matcher` — feed it into
    /// [`simnet::FlowTable::delete_matching`]. Emitted on client handover so
    /// the departing ingress stops rewriting a client it no longer serves.
    FlowDelete {
        at: SimTime,
        switch: SwitchId,
        matcher: FlowMatch,
    },
}

impl ControllerOutput {
    pub fn at(&self) -> SimTime {
        match self {
            ControllerOutput::FlowMod { at, .. }
            | ControllerOutput::ReleaseViaTable { at, .. }
            | ControllerOutput::DropBuffered { at, .. }
            | ControllerOutput::FlowDelete { at, .. } => *at,
        }
    }

    pub fn switch(&self) -> SwitchId {
        match self {
            ControllerOutput::FlowMod { switch, .. }
            | ControllerOutput::ReleaseViaTable { switch, .. }
            | ControllerOutput::DropBuffered { switch, .. }
            | ControllerOutput::FlowDelete { switch, .. } => *switch,
        }
    }
}

/// Coordination hook consulted before the controller starts a new
/// deployment machine. In a single-controller deployment no
/// gate is installed and every acquisition trivially succeeds; a federated
/// mesh (the `edgemesh` crate) installs a shared deployment-lease table here
/// so two controllers that concurrently see a PacketIn for the same
/// undeployed service at the same BEST cluster produce exactly one
/// deployment. The gate models a linearizable coordination service (think
/// etcd): `try_acquire` answers synchronously, and the deterministic event
/// order of the simulation breaks ties.
pub trait DeployGate {
    /// Try to take (or confirm holding) the deployment lease for
    /// `(cluster, service)`. `false` means another controller already holds
    /// it — do not start a machine; a remote status delta will announce the
    /// outcome.
    fn try_acquire(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId) -> bool;
    /// Release the lease when the local deployment reaches Ready or Failed.
    fn release(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId);
}

/// What changed about one `(service, cluster)` instance — the unit of the
/// mesh's delta-gossip state sync. Emitted by a controller (when built with
/// [`ControllerBuilder::emit_status_deltas`]) and applied to every *other*
/// controller via [`Controller::apply_remote_delta`] after a simulated link
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusDelta {
    /// When the originating controller observed the change.
    pub origin: SimTime,
    pub cluster: ClusterId,
    pub service: ServiceId,
    pub kind: DeltaKind,
}

/// The kind of instance-status change carried by a [`StatusDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// The instance became ready (a deployment finished) — receivers
    /// retarget their memorized flows toward it (without-waiting Fig. 3).
    Ready,
    /// The instance is gone (deployment failed, scaled to zero, or removed)
    /// — receivers learn the redirect target is stale.
    Gone,
}

/// Everything recorded about one on-demand deployment (drives Figs. 10–15).
#[derive(Debug, Clone)]
pub struct DeploymentRecord {
    pub service: String,
    pub cluster: ClusterId,
    pub kind: ClusterKind,
    /// When the triggering PacketIn reached the Dispatcher.
    pub triggered_at: SimTime,
    /// Pull phase (start, end); `None` when the image was cached.
    pub pull: Option<(SimTime, SimTime)>,
    /// Create phase (start, end); `None` when already created.
    pub create: Option<(SimTime, SimTime)>,
    /// Scale-Up phase: (issue, backend API returned, backend-expected ready).
    pub scale_up: Option<(SimTime, SimTime, SimTime)>,
    /// When the controller's port polling confirmed readiness.
    pub ready_detected: SimTime,
    /// Was a client request held waiting on this deployment?
    pub waited: bool,
}

impl DeploymentRecord {
    /// Time from trigger until the controller considered the service usable.
    pub fn total(&self) -> SimDuration {
        self.ready_detected - self.triggered_at
    }

    /// The Fig. 14/15 metric: wait from the scale-up API returning until the
    /// port was seen open.
    pub fn wait_time(&self) -> SimDuration {
        match self.scale_up {
            Some((_, accepted, _)) => self.ready_detected - accepted,
            None => SimDuration::ZERO,
        }
    }
}

/// Counters and logs exposed for the evaluation harness.
#[derive(Debug, Default)]
pub struct ControllerStats {
    pub packet_ins: u64,
    /// PacketIns answered straight from FlowMemory.
    pub memory_hits: u64,
    /// Requests forwarded toward the real cloud.
    pub cloud_forwards: u64,
    /// Requests held for an in-flight deployment (with waiting).
    pub held_requests: u64,
    /// Requests redirected to a farther instance while BEST deploys.
    pub detoured_requests: u64,
    /// Completed deployments.
    pub deployments: Vec<DeploymentRecord>,
    /// Deployments that never became ready within the probe timeout.
    pub failed_deployments: u64,
    /// Idle instances scaled to zero.
    pub scale_downs: u64,
    /// Services fully removed after prolonged idleness (Fig. 4 Remove).
    pub removals: u64,
    /// Flow retargets after a BEST deployment became ready.
    pub retargets: u64,
    /// Deployments started by the predictor rather than a request.
    pub proactive_deployments: u64,
    /// Phase retries after transient failures.
    pub retried_operations: u64,
    /// Mid-deployment crash recoveries: an instance died while its
    /// deployment was still being probed and the dispatcher re-issued the
    /// scale-up (only possible under the stepped dispatcher — the synchronous
    /// reference pipeline can never observe a crash mid-flight).
    pub crash_recoveries: u64,
    /// Replica increases performed by the autoscaler.
    pub autoscale_ups: u64,
    /// Memorized flows abandoned because the client moved nearer to another
    /// ready instance (Follow-Me-Edge).
    pub follow_me_moves: u64,
    /// Client handovers processed: the client left this controller's ingress
    /// and its memorized flows were torn down so the next ingress re-runs
    /// FAST/BEST from scratch. Always zero with static clients.
    pub handovers: u64,
    /// Deployments *not* started because another controller in the mesh held
    /// the lease (each one is a duplicate deployment avoided). Always zero
    /// without a [`DeployGate`].
    pub lease_rejections: u64,
    /// Remote status deltas applied from mesh peers. Always zero outside a
    /// federated mesh.
    pub remote_deltas: u64,
    /// Scheduler decisions the dispatcher refused because the target site was
    /// out of capacity or failed a placement requirement (each one fell
    /// through to the next-best option or the cloud). Always zero under the
    /// default unlimited [`SiteCapacity`].
    pub admission_rejections: u64,
    /// Times a booking pushed a site's allocation above its declared
    /// capacity. The admission check makes this impossible; the bench gates
    /// on it staying zero.
    pub capacity_violations: u64,
}

/// One attached cluster: the backend plus where it sits.
pub struct AttachedCluster {
    pub backend: Box<dyn ClusterBackend>,
    /// Per-switch latency to this cluster's host; indexed by [`SwitchId`].
    /// "Nearest" is always relative to the requesting client's ingress
    /// switch.
    pub distances: Vec<SimDuration>,
    /// Per-switch port leading (directly or via trunks) to this cluster's
    /// host; indexed by [`SwitchId`]. Single-switch setups have one entry.
    pub ports: Vec<PortId>,
    /// Declared resources of the site ([`SiteCapacity::UNLIMITED`] unless
    /// [`Controller::configure_site`] says otherwise).
    pub capacity: SiteCapacity,
    /// Placement labels the site advertises (matched against
    /// [`cluster::DeploymentRequirements`]).
    pub labels: Arc<[String]>,
    /// Resources currently booked on the site by admitted deployments.
    pub allocated: ResourceAllocation,
    /// Per-service booking: the per-replica demand admitted and how many
    /// replicas are booked.
    admitted: HashMap<ServiceId, (ResourceRequest, u32)>,
    /// Dense per-service snapshot cache (DESIGN.md §5i), indexed by
    /// [`ServiceId`]. Each entry is validated against the backend's mutation
    /// epoch and its own `stable_until` before reuse, so a hit is exact —
    /// bit-identical to a fresh `status`/`replica_endpoints` query. Unused
    /// (always empty) for backends without snapshot support.
    snap_cache: Vec<Option<SnapEntry>>,
}

/// One cached [`cluster::ServiceSnapshot`] plus the endpoint list that came
/// with it.
struct SnapEntry {
    epoch: u64,
    snapped_at: SimTime,
    stable_until: SimTime,
    status: ServiceStatus,
    endpoints: Vec<SocketAddr>,
}

impl AttachedCluster {
    /// Cached status + ready endpoints of `sid` at `now`, refreshed from the
    /// backend when the cached entry is missing, from a different mutation
    /// epoch, or past its validity window. Returns `None` when the backend
    /// does not support snapshots (callers fall back to direct queries).
    fn snapshot(
        &mut self,
        now: SimTime,
        sid: ServiceId,
        name: &str,
    ) -> Option<(&ServiceStatus, &[SocketAddr])> {
        let cur_epoch = self.backend.mutation_epoch()?;
        let idx = sid.0 as usize;
        if idx >= self.snap_cache.len() {
            self.snap_cache.resize_with(idx + 1, || None);
        }
        let valid = self.snap_cache[idx]
            .as_ref()
            .is_some_and(|e| e.epoch == cur_epoch && e.snapped_at <= now && now < e.stable_until);
        if !valid {
            // Reuse the old entry's endpoint buffer to stay allocation-free
            // in steady state.
            let mut endpoints = self.snap_cache[idx]
                .take()
                .map(|e| e.endpoints)
                .unwrap_or_default();
            endpoints.clear();
            let snap = self.backend.service_snapshot(now, name, &mut endpoints)?;
            self.snap_cache[idx] = Some(SnapEntry {
                epoch: snap.epoch,
                snapped_at: now,
                stable_until: snap.stable_until,
                status: snap.status,
                endpoints,
            });
        }
        let e = self.snap_cache[idx].as_ref().expect("entry just ensured");
        Some((&e.status, &e.endpoints[..]))
    }

    /// Convenience wrapper over [`AttachedCluster::snapshot`] that falls
    /// back to a direct backend query, preserving exact semantics for
    /// backends without snapshot support.
    fn status_of(&mut self, now: SimTime, sid: ServiceId, name: &str) -> ServiceStatus {
        match self.snapshot(now, sid, name) {
            Some((status, _)) => status.clone(),
            None => self.backend.status(now, name),
        }
    }
}

/// Which deployment engine drives the pipeline.
enum Engine {
    /// The event-driven dispatcher: one state machine per in-flight
    /// deployment, advanced by [`Controller::on_wakeup`].
    Stepped(Dispatcher),
    /// The retained synchronous pipeline ([`reference`]) — the equivalence
    /// oracle for the lockstep property test.
    Reference(reference::ReferencePipeline),
}

/// Proactive-deployment cadence, owned by the controller so predict runs are
/// ordinary wakeups (the event loop no longer pre-pushes tick events).
struct PredictSchedule {
    next: SimTime,
    interval: SimDuration,
    end: SimTime,
    horizon: SimDuration,
}

impl PredictSchedule {
    fn next_due_at(&self) -> Option<SimTime> {
        (self.next <= self.end).then_some(self.next)
    }
}

/// The transparent-edge SDN controller.
pub struct Controller {
    config: ControllerConfig,
    pub catalog: ServiceCatalog,
    memory: FlowMemory,
    global: Box<dyn GlobalScheduler>,
    local: Box<dyn LocalScheduler>,
    clusters: Vec<AttachedCluster>,
    registries: RegistrySet,
    /// Per-switch port toward the cloud/WAN uplink (directly or via trunks).
    cloud_ports: Vec<PortId>,
    /// The deployment pipeline: stepped dispatcher or synchronous reference.
    engine: Engine,
    /// Dispatcher-tracked client locations: which switch and port each
    /// client was last seen at (paper §IV-B).
    client_ports: DetHashMap<IpAddr, (SwitchId, PortId)>,
    /// Reused buffer for the per-decision scheduler view (cleared between
    /// PacketIns; only its capacity survives).
    views_scratch: Vec<ClusterView>,
    /// Reused buffer for Local-Scheduler endpoint listing (same rationale).
    endpoints_scratch: Vec<SocketAddr>,
    /// Pending flow moves produced by BEST deployments:
    /// (ready instant, cluster, service).
    retarget_queue: Vec<(SimTime, ClusterId, ServiceId)>,
    /// Services scaled to zero, awaiting the Remove phase: when each was
    /// scaled down.
    // BTreeMap: the Remove phase iterates to collect due services; removal
    // (and the `Gone` delta it gossips) must happen in key order, not hash
    // order, or federated replays diverge.
    scaled_to_zero: BTreeMap<(ClusterId, ServiceId), SimTime>,
    predictor: Box<dyn Predictor>,
    predict: Option<PredictSchedule>,
    /// Most recent dispatcher deployment failure (diagnostics; see
    /// [`Controller::last_deploy_failure`]).
    last_deploy_failure: Option<DeployFailure>,
    /// Most recent admission rejection (diagnostics; see
    /// [`Controller::last_admission_error`]).
    last_admission_error: Option<AdmissionError>,
    /// Mesh deployment-lease hook; `None` (the default) grants everything.
    gate: Option<Box<dyn DeployGate>>,
    /// Emit [`StatusDelta`]s for instance-status changes (mesh gossip input).
    emit_deltas: bool,
    /// Deltas produced since the last [`Controller::drain_status_deltas`].
    status_deltas: Vec<StatusDelta>,
    /// Idle scale-downs whose backend call failed transiently:
    /// (retry instant, cluster, service). Re-checked at the next due wakeup.
    scale_down_retries: Vec<(SimTime, ClusterId, ServiceId)>,
    pub stats: ControllerStats,
}

/// Diagnostic record of a dispatcher deployment that ended in `Failed`:
/// which phase gave up, and why.
#[derive(Debug, Clone)]
pub struct DeployFailure {
    pub cluster: ClusterId,
    pub service: ServiceId,
    pub phase: DeployPhaseKind,
    pub error: DeployError,
}

/// Fluent constructor for [`Controller`] — every dependency has a default
/// (NearestWaiting global scheduler, round-robin local scheduler, empty
/// registry set, cloud uplink on port 0, no predictor), so call-sites only
/// name the pieces they care about:
///
/// ```
/// use edgectl::{Controller, ControllerConfig, NearestReadyFirst};
/// use simnet::openflow::PortId;
///
/// let controller = Controller::builder(ControllerConfig::default())
///     .global(NearestReadyFirst)
///     .cloud_port(PortId(2))
///     .build();
/// assert_eq!(controller.switch_count(), 1);
/// ```
pub struct ControllerBuilder {
    config: ControllerConfig,
    global: Box<dyn GlobalScheduler>,
    local: Box<dyn LocalScheduler>,
    registries: RegistrySet,
    cloud_port: PortId,
    predictor: Box<dyn Predictor>,
    reference_pipeline: bool,
    gate: Option<Box<dyn DeployGate>>,
    emit_deltas: bool,
}

impl ControllerBuilder {
    /// Global (cluster-picking) scheduler; already-boxed trait objects are
    /// accepted too.
    pub fn global(mut self, scheduler: impl GlobalScheduler + 'static) -> ControllerBuilder {
        self.global = Box::new(scheduler);
        self
    }

    /// Local (replica-picking) scheduler.
    pub fn local(mut self, scheduler: impl LocalScheduler + 'static) -> ControllerBuilder {
        self.local = Box::new(scheduler);
        self
    }

    /// Image registries the deployment pipeline pulls from.
    pub fn registries(mut self, registries: RegistrySet) -> ControllerBuilder {
        self.registries = registries;
        self
    }

    /// Primary switch's port toward the cloud/WAN uplink.
    pub fn cloud_port(mut self, port: PortId) -> ControllerBuilder {
        self.cloud_port = port;
        self
    }

    /// Proactive-deployment predictor (default: none — the paper's pure
    /// on-demand setting).
    pub fn predictor(mut self, predictor: impl Predictor + 'static) -> ControllerBuilder {
        self.predictor = Box::new(predictor);
        self
    }

    /// Drive deployments through the retained **synchronous** pipeline
    /// ([`crate::dispatcher::reference`]) instead of the stepped dispatcher.
    /// This is the equivalence oracle: the lockstep property test runs one
    /// controller per engine through identical inputs and asserts identical
    /// outputs, stats and deployment records.
    pub fn reference_pipeline(mut self) -> ControllerBuilder {
        self.reference_pipeline = true;
        self
    }

    /// Install a mesh deployment-lease gate (see [`DeployGate`]). Without
    /// one, every acquisition succeeds — single-controller behaviour is
    /// byte-identical.
    pub fn deploy_gate(mut self, gate: impl DeployGate + 'static) -> ControllerBuilder {
        self.gate = Some(Box::new(gate));
        self
    }

    /// Emit [`StatusDelta`]s on instance-status changes for the mesh gossip
    /// layer to distribute. Off by default (no allocation, no behaviour
    /// change).
    pub fn emit_status_deltas(mut self) -> ControllerBuilder {
        self.emit_deltas = true;
        self
    }

    pub fn build(self) -> Controller {
        let memory = FlowMemory::new(self.config.memory_idle_timeout)
            .expect("memory_idle_timeout must be non-zero");
        let engine = if self.reference_pipeline {
            Engine::Reference(reference::ReferencePipeline::default())
        } else {
            Engine::Stepped(Dispatcher::default())
        };
        Controller {
            config: self.config,
            catalog: ServiceCatalog::new(),
            memory,
            global: self.global,
            local: self.local,
            clusters: Vec::new(),
            registries: self.registries,
            cloud_ports: vec![self.cloud_port],
            engine,
            client_ports: DetHashMap::default(),
            views_scratch: Vec::new(),
            endpoints_scratch: Vec::new(),
            retarget_queue: Vec::new(),
            scaled_to_zero: BTreeMap::new(),
            predictor: self.predictor,
            predict: None,
            last_deploy_failure: None,
            last_admission_error: None,
            gate: self.gate,
            emit_deltas: self.emit_deltas,
            status_deltas: Vec::new(),
            scale_down_retries: Vec::new(),
            stats: ControllerStats::default(),
        }
    }
}

impl Controller {
    /// Start building a controller: `Controller::builder(config)` + the
    /// [`ControllerBuilder`] setters replace the former positional
    /// constructor.
    pub fn builder(config: ControllerConfig) -> ControllerBuilder {
        ControllerBuilder {
            config,
            global: Box::new(NearestWaiting),
            local: Box::new(RoundRobinLocal::default()),
            registries: RegistrySet::new(),
            cloud_port: PortId(0),
            predictor: Box::new(NoPrediction),
            reference_pipeline: false,
            gate: None,
            emit_deltas: false,
        }
    }

    /// Swap the proactive-deployment predictor after construction (the
    /// testbed derives oracle schedules from the trace, which only exists
    /// once the controller is already built).
    pub fn set_predictor(&mut self, predictor: Box<dyn Predictor>) {
        self.predictor = predictor;
    }

    /// Attach an edge cluster reachable via `port` on the primary switch;
    /// returns its id. Multi-switch fabrics extend the port map with
    /// [`Controller::add_switch`].
    pub fn attach_cluster(
        &mut self,
        backend: Box<dyn ClusterBackend>,
        distance: SimDuration,
        port: PortId,
    ) -> ClusterId {
        self.clusters.push(AttachedCluster {
            backend,
            distances: vec![distance],
            ports: vec![port],
            capacity: SiteCapacity::UNLIMITED,
            labels: Arc::from(Vec::new()),
            allocated: ResourceAllocation::default(),
            admitted: HashMap::new(),
            snap_cache: Vec::new(),
        });
        ClusterId(self.clusters.len() - 1)
    }

    /// Declare a site's resource capacity and placement labels (defaults:
    /// [`SiteCapacity::UNLIMITED`], no labels). Scheduling decisions that
    /// would overrun the declared capacity are rejected by admission control
    /// and fall through to the next-best site or the cloud.
    pub fn configure_site(&mut self, id: ClusterId, capacity: SiteCapacity, labels: Vec<String>) {
        let site = &mut self.clusters[id.0];
        site.capacity = capacity;
        site.labels = Arc::from(labels);
    }

    /// Resources currently booked on a site by admitted deployments.
    pub fn site_allocation(&self, id: ClusterId) -> ResourceAllocation {
        self.clusters[id.0].allocated
    }

    /// A site's declared capacity.
    pub fn site_capacity(&self, id: ClusterId) -> SiteCapacity {
        self.clusters[id.0].capacity
    }

    /// Book resources for instances started outside the controller's own
    /// pipeline (testbed prewarm): `replicas` replicas of `service` running
    /// on `cluster`. No-op if the service is already booked there.
    pub fn note_external_deployment(
        &mut self,
        cluster: ClusterId,
        service: ServiceId,
        replicas: u32,
    ) {
        let name = self.catalog.name_arc(service);
        let Some(registered) = self.catalog.lookup_name(&name) else {
            return;
        };
        let demand = registered.template.resource_request();
        self.book(cluster, service, demand, replicas.max(1));
    }

    /// The most recent admission rejection, if any (diagnostics for tests and
    /// the verifier; cleared never, overwritten on each rejection).
    pub fn last_admission_error(&self) -> Option<&AdmissionError> {
        self.last_admission_error.as_ref()
    }

    /// Register an additional ingress switch: its port toward the cloud and,
    /// per attached cluster, the port leading toward that cluster (a local
    /// port or the trunk toward the switch the cluster hangs off) plus the
    /// latency from this switch to the cluster.
    pub fn add_switch(
        &mut self,
        cloud_port: PortId,
        cluster_ports: Vec<(PortId, SimDuration)>,
    ) -> SwitchId {
        assert_eq!(
            cluster_ports.len(),
            self.clusters.len(),
            "one (port, distance) per attached cluster"
        );
        self.cloud_ports.push(cloud_port);
        for (cluster, (port, distance)) in self.clusters.iter_mut().zip(cluster_ports) {
            cluster.ports.push(port);
            cluster.distances.push(distance);
        }
        SwitchId(self.cloud_ports.len() - 1)
    }

    /// Number of switches under this controller.
    pub fn switch_count(&self) -> usize {
        self.cloud_ports.len()
    }

    pub fn cluster(&self, id: ClusterId) -> &dyn ClusterBackend {
        self.clusters[id.0].backend.as_ref()
    }

    pub fn cluster_mut(&mut self, id: ClusterId) -> &mut dyn ClusterBackend {
        self.clusters[id.0].backend.as_mut()
    }

    pub fn memory(&self) -> &FlowMemory {
        &self.memory
    }

    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Where the Dispatcher last saw each client (location tracking).
    pub fn client_location(&self, ip: IpAddr) -> Option<PortId> {
        self.client_ports.get(&ip).map(|&(_, p)| p)
    }

    /// Which switch the client was last seen behind.
    pub fn client_switch(&self, ip: IpAddr) -> Option<SwitchId> {
        self.client_ports.get(&ip).map(|&(s, _)| s)
    }

    /// The client moved to another ingress. Forget its memorized flows and
    /// tear down the matching switch entries on the ingress it is leaving,
    /// so its next request table-misses at the new ingress and re-runs the
    /// Dispatcher (fresh FAST/BEST evaluation) there. Pending placeholders
    /// are kept: a request held on an in-flight deployment stays anchored
    /// here until it resolves (make-before-break), which is what the
    /// session-continuity analysis verifies.
    pub fn on_client_handover(&mut self, now: SimTime, client: IpAddr) -> Vec<ControllerOutput> {
        self.stats.handovers += 1;
        let Some(switch) = self.client_switch(client) else {
            // Never seen here — nothing installed, nothing to tear down.
            return Vec::new();
        };
        // Sorted for deterministic teardown order (FlowKey orders by client
        // ip then service address).
        let mut departing: Vec<(FlowKey, SocketAddr)> = self
            .memory
            .iter()
            .filter(|f| f.key.client_ip == client && !f.pending)
            .map(|f| (f.key, f.target))
            .collect();
        departing.sort_unstable();
        let mut out = Vec::with_capacity(departing.len() * 2);
        for (key, target) in departing {
            self.memory.forget(key);
            out.push(ControllerOutput::FlowDelete {
                at: now,
                switch,
                matcher: FlowMatch::client_to_service(client, key.service_addr),
            });
            out.push(ControllerOutput::FlowDelete {
                at: now,
                switch,
                matcher: FlowMatch {
                    protocol: Some(simnet::Protocol::Tcp),
                    src_ip: Some(target.ip),
                    src_port: Some(target.port),
                    dst_ip: Some(client),
                    ..FlowMatch::default()
                },
            });
        }
        // Forget the stale location too: if the client returns to this
        // ingress later, its first packet re-registers it.
        self.client_ports.remove(&client);
        out
    }

    // -----------------------------------------------------------------------
    // PacketIn — the Dispatcher algorithm (paper Fig. 7)
    // -----------------------------------------------------------------------

    /// Handle a table-miss PacketIn from the primary switch (single-switch
    /// convenience wrapper around [`Controller::on_packet_in_at`]).
    pub fn on_packet_in(
        &mut self,
        now: SimTime,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    ) -> Vec<ControllerOutput> {
        self.on_packet_in_at(now, INGRESS, packet, buffer_id, in_port)
    }

    /// Handle a table-miss PacketIn from switch `sw`.
    pub fn on_packet_in_at(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    ) -> Vec<ControllerOutput> {
        let mut out = Vec::new();
        self.on_packet_in_at_into(now, sw, packet, buffer_id, in_port, &mut out);
        out
    }

    /// [`Controller::on_packet_in_at`] appending into a caller-owned buffer —
    /// the allocation-free form the testbed's batched event loop drives. The
    /// outputs appended are exactly (and in the same order as) what the
    /// `Vec`-returning wrapper would have returned.
    pub fn on_packet_in_at_into(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
        out: &mut Vec<ControllerOutput>,
    ) {
        self.stats.packet_ins += 1;
        self.client_ports.insert(packet.src.ip, (sw, in_port));
        let decide_at = now + self.config.processing_delay;
        let key = FlowKey {
            client_ip: packet.src.ip,
            service_addr: packet.dst,
        };

        // 1. Memorized flow? Re-install immediately (the fast path that lets
        //    switch idle timeouts stay low).
        if let Some(flow) = self.memory.recall(now, key) {
            let (target, cluster, sid) = (flow.target, flow.cluster, flow.service);
            let Some(cluster) = cluster else {
                // Memorized as served by the cloud (no edge cluster).
                self.stats.memory_hits += 1;
                return self.cloud_outputs(
                    decide_at,
                    sw,
                    packet,
                    in_port,
                    buffer_id,
                    Some(sid),
                    out,
                );
            };
            let service_name = self.catalog.name_arc(sid);
            // Follow-Me-Edge (related work [12], [13]): if the client has
            // moved and a strictly nearer cluster now has a ready instance,
            // fall through to a fresh scheduling decision instead of
            // re-installing the stale redirect (which would hairpin traffic
            // across the fabric).
            let cur_dist = self.clusters[cluster.0].distances[sw.0];
            let mut nearer_ready = false;
            for i in 0..self.clusters.len() {
                if i != cluster.0
                    && self.clusters[i].distances[sw.0] < cur_dist
                    && self.clusters[i]
                        .status_of(now, sid, &service_name)
                        .is_ready()
                {
                    nearer_ready = true;
                    break;
                }
            }
            // The remembered instance may have been scaled down meanwhile.
            if !nearer_ready
                && self.clusters[cluster.0]
                    .status_of(now, sid, &service_name)
                    .is_ready()
            {
                self.stats.memory_hits += 1;
                return self.redirect_outputs(
                    decide_at,
                    sw,
                    key,
                    sid,
                    target,
                    cluster,
                    in_port,
                    Some(buffer_id),
                    out,
                );
            }
            if nearer_ready {
                self.stats.follow_me_moves += 1;
            }
            self.memory.forget(key);
        }

        // 2. Registered service? Unregistered destinations pass through to
        //    the cloud untouched.
        let Some(service) = self.catalog.lookup(packet.dst) else {
            return self.cloud_outputs(decide_at, sw, packet, in_port, buffer_id, None, out);
        };
        let sid = service.id;
        let template = Arc::clone(&service.template);
        let service_name = self.catalog.name_arc(sid);
        self.predictor.observe(now, packet.dst);

        // 3. Feed the Global Scheduler the Dispatcher's system view. The
        //    view buffer is reused across decisions (take/put so the borrow
        //    checker sees it detached from `self` while the context lives).
        let mut views = std::mem::take(&mut self.views_scratch);
        self.cluster_views_into(now, sid, sw.0, &service_name, &mut views);
        let ctx = SchedulingContext::new(
            sid,
            &views,
            template.resource_request(),
            &template.requirements,
            &self.catalog,
            now,
        );
        let decision = self.global.decide(&ctx);

        // 4. Kick off the BEST deployment first (without waiting it runs in
        //    parallel with serving the current request elsewhere).
        if let Some(best) = decision.best {
            if decision.fast != Some(best) {
                self.request_best_deployment(now, best, sid, &template);
            }
        }

        // 5. Serve the current request.
        match decision.fast {
            Some(fast) => {
                // The view built for the scheduler already holds this
                // cluster's status at `now` (nothing between the snapshot and
                // here mutates `fast` — BEST-side deployment only runs when
                // it targets a *different* cluster), so reuse it instead of
                // re-querying the backend on the per-request path.
                if views[fast.0].status.is_ready() {
                    // Redirect immediately (possibly a detour to a farther
                    // cluster while BEST deploys).
                    if decision.is_without_waiting() {
                        self.stats.detoured_requests += 1;
                    }
                    // Local Scheduler: pick the instance within the cluster.
                    let target = self.pick_instance(now, fast, sid);
                    self.redirect_outputs(
                        decide_at,
                        sw,
                        key,
                        sid,
                        target,
                        fast,
                        in_port,
                        Some(buffer_id),
                        out,
                    )
                } else {
                    // On-demand deployment WITH waiting (paper Fig. 5): hold
                    // the buffered packet until the port opens.
                    self.hold_on_deployment(
                        now, decide_at, sw, fast, sid, &template, key, packet, in_port, buffer_id,
                        out,
                    )
                }
            }
            None => self.cloud_outputs(decide_at, sw, packet, in_port, buffer_id, Some(sid), out),
        };
        views.clear();
        self.views_scratch = views;
        // Advance any machine whose step is already due (e.g. the scale-up a
        // request just triggered) before returning to the event loop, so the
        // backend sees the same call order as the synchronous pipeline.
        self.pump_machines(now, out);
    }

    /// BEST-side deployment request (never holds the current request).
    fn request_best_deployment(
        &mut self,
        now: SimTime,
        best: ClusterId,
        sid: ServiceId,
        template: &Arc<cluster::ServiceTemplate>,
    ) {
        // Admission control: a BEST decision targeting a site that cannot
        // take the deployment is dropped — the caller already serves the
        // request at FAST or the cloud, which *is* the fall-through.
        if !self.deployment_exists(now, best, sid) && self.admit(best, sid, template).is_err() {
            return;
        }
        if matches!(self.engine, Engine::Reference(_)) {
            if let Some(ready_at) = self.ensure_deployed_reference(now, best, sid, template, false)
            {
                self.schedule_retarget(ready_at, best, sid);
            }
            return;
        }
        let existing = match &self.engine {
            Engine::Stepped(d) => d.find(best, sid),
            Engine::Reference(_) => None,
        };
        if let Some(i) = existing {
            // Piggyback: the in-flight deployment will retarget when ready.
            if let Engine::Stepped(d) = &mut self.engine {
                d.machines[i].wants_retarget = true;
            }
            return;
        }
        let name = self.catalog.name_arc(sid);
        if self.clusters[best.0].backend.status(now, &name).is_ready() {
            self.schedule_retarget(now, best, sid);
            return;
        }
        if !self.gate_acquire(now, best, sid) {
            // A mesh peer holds the deployment lease for this instance. The
            // caller already serves the request at FAST (or the cloud); the
            // lease holder's Ready delta will retarget it later.
            self.stats.lease_rejections += 1;
            return;
        }
        let i = self.start_machine(now, best, sid, template, false, false);
        if let Engine::Stepped(d) = &mut self.engine {
            d.machines[i].wants_retarget = true;
        }
    }

    /// FAST-side with-waiting path: hold the buffered packet until the
    /// deployment's port opens (joining an in-flight deployment if one
    /// exists), or fall back to the cloud on failure.
    #[allow(clippy::too_many_arguments)]
    fn hold_on_deployment(
        &mut self,
        now: SimTime,
        decide_at: SimTime,
        sw: SwitchId,
        fast: ClusterId,
        sid: ServiceId,
        template: &Arc<cluster::ServiceTemplate>,
        key: FlowKey,
        packet: Packet,
        in_port: PortId,
        buffer_id: BufferId,
        out: &mut Vec<ControllerOutput>,
    ) {
        // Admission control: the scheduler picked a with-waiting deployment
        // at `fast`, but the site may not take it (capacity / labels). Fall
        // through to the nearest other ready instance, else the cloud.
        if !self.deployment_exists(now, fast, sid) && self.admit(fast, sid, template).is_err() {
            let name = self.catalog.name_arc(sid);
            let fallback = self
                .clusters
                .iter()
                .enumerate()
                .filter(|(i, c)| ClusterId(*i) != fast && c.backend.status(now, &name).is_ready())
                .min_by_key(|(i, c)| (c.distances[sw.0], *i))
                .map(|(i, _)| ClusterId(i));
            return match fallback {
                Some(cluster) => {
                    self.stats.detoured_requests += 1;
                    let target = self.pick_instance(now, cluster, sid);
                    self.redirect_outputs(
                        decide_at,
                        sw,
                        key,
                        sid,
                        target,
                        cluster,
                        in_port,
                        Some(buffer_id),
                        out,
                    )
                }
                None => {
                    self.cloud_outputs(decide_at, sw, packet, in_port, buffer_id, Some(sid), out)
                }
            };
        }
        if matches!(self.engine, Engine::Reference(_)) {
            return match self.ensure_deployed_reference(now, fast, sid, template, true) {
                Some(ready_at) => {
                    self.stats.held_requests += 1;
                    let target = self.pick_instance(ready_at, fast, sid);
                    self.redirect_outputs(
                        ready_at.max(decide_at),
                        sw,
                        key,
                        sid,
                        target,
                        fast,
                        in_port,
                        Some(buffer_id),
                        out,
                    )
                }
                None => {
                    // Deployment failed; fall back to the cloud.
                    self.cloud_outputs(decide_at, sw, packet, in_port, buffer_id, None, out)
                }
            };
        }
        // Pending placeholder: keeps the held flow visible to idle
        // scale-down protection and the coherence audit without serving the
        // fast path (it converts to a real entry when the redirect installs).
        self.memory.remember_pending(now, key, sid, Some(fast));
        let existing = match &self.engine {
            Engine::Stepped(d) => d.find(fast, sid),
            Engine::Reference(_) => None,
        };
        let i = match existing {
            Some(i) => i,
            None => {
                if !self.gate_acquire(now, fast, sid) {
                    // Lease lost to a mesh peer: there is no local machine to
                    // hold this request on, so fall back to the cloud
                    // (accepted with-waiting divergence, DESIGN.md §5f). The
                    // flow is memorized cloud-bound so the holder's Ready
                    // delta retargets it to the edge instance.
                    self.stats.lease_rejections += 1;
                    self.memory.forget(key);
                    return self.cloud_outputs(
                        decide_at,
                        sw,
                        packet,
                        in_port,
                        buffer_id,
                        Some(sid),
                        out,
                    );
                }
                self.start_machine(now, fast, sid, template, true, false)
            }
        };
        if let Engine::Stepped(d) = &mut self.engine {
            d.machines[i].waiters.push(Waiter {
                key,
                sw,
                in_port,
                buffer_id,
                decide_at,
                packet,
            });
        }
    }

    // -----------------------------------------------------------------------
    // Deployment pipeline (Pull → Create → Scale-Up → poll port)
    // -----------------------------------------------------------------------

    /// The Dispatcher's system view fed to the Global Scheduler: per-cluster
    /// status at `now` from the perspective of switch `sw_idx`, including
    /// whether a deployment of `sid` is currently in flight there.
    fn cluster_views_into(
        &mut self,
        now: SimTime,
        sid: ServiceId,
        sw_idx: usize,
        name: &str,
        out: &mut Vec<ClusterView>,
    ) {
        for i in 0..self.clusters.len() {
            let deploying = match &self.engine {
                Engine::Stepped(d) => d.find(ClusterId(i), sid).is_some(),
                Engine::Reference(r) => r
                    .pending
                    .get(&(ClusterId(i), sid))
                    .is_some_and(|&t| t > now),
            };
            let c = &mut self.clusters[i];
            let status = c.status_of(now, sid, name);
            out.push(
                ClusterView::builder(ClusterId(i), c.backend.kind(), c.distances[sw_idx], status)
                    .load(c.backend.load())
                    .deploying(deploying)
                    .capacity(c.capacity)
                    .allocated(c.allocated)
                    .labels(Arc::clone(&c.labels))
                    .build(),
            );
        }
    }

    /// Is a deployment of `sid` at `cluster` already in flight (either
    /// engine), or an instance already ready there? Either way no new
    /// replicas would start, so admission control does not apply.
    fn deployment_exists(&self, now: SimTime, cluster: ClusterId, sid: ServiceId) -> bool {
        let in_flight = match &self.engine {
            Engine::Stepped(d) => d.find(cluster, sid).is_some(),
            Engine::Reference(r) => r.pending.get(&(cluster, sid)).is_some_and(|&t| t > now),
        };
        in_flight
            || self.clusters[cluster.0]
                .backend
                .status(now, self.catalog.name_of(sid))
                .is_ready()
    }

    /// Admission control for starting a new deployment of `sid` at
    /// `cluster`: placement labels first, then capacity against the current
    /// allocation (a service already booked there re-admits for free — its
    /// resources are still reserved). Rejections are counted and recorded.
    fn admit(
        &mut self,
        cluster: ClusterId,
        sid: ServiceId,
        template: &cluster::ServiceTemplate,
    ) -> Result<(), AdmissionError> {
        let site = &self.clusters[cluster.0];
        let err = if let Some(label) = template.requirements.first_unmet(&site.labels) {
            AdmissionError::RequirementsUnmet {
                cluster,
                label: label.to_owned(),
            }
        } else if site.admitted.contains_key(&sid) {
            return Ok(());
        } else {
            match site
                .capacity
                .admits(&site.allocated, &template.resource_request())
            {
                Ok(()) => return Ok(()),
                Err(shortfall) => AdmissionError::Capacity { cluster, shortfall },
            }
        };
        self.stats.admission_rejections += 1;
        self.last_admission_error = Some(err.clone());
        Err(err)
    }

    /// Book `replicas` replicas of `sid` on `cluster` at `demand` each.
    /// No-op if the service already holds a booking there (re-deployments
    /// reuse the reservation).
    fn book(&mut self, cluster: ClusterId, sid: ServiceId, demand: ResourceRequest, replicas: u32) {
        let site = &mut self.clusters[cluster.0];
        if site.admitted.contains_key(&sid) {
            return;
        }
        site.allocated.add(&demand, replicas);
        site.admitted.insert(sid, (demand, replicas));
        if site.allocated.exceeds(&site.capacity) {
            self.stats.capacity_violations += 1;
        }
    }

    /// Release the booking `sid` holds on `cluster`, if any.
    fn release_booking(&mut self, cluster: ClusterId, sid: ServiceId) {
        let site = &mut self.clusters[cluster.0];
        if let Some((demand, replicas)) = site.admitted.remove(&sid) {
            site.allocated.remove(&demand, replicas);
        }
    }

    /// Grow or shrink the booking of `sid` on `cluster` to `replicas`
    /// (autoscaler bookkeeping).
    fn set_booked_replicas(&mut self, cluster: ClusterId, sid: ServiceId, replicas: u32) {
        let demand = match self.clusters[cluster.0].admitted.get(&sid) {
            Some(&(demand, _)) => demand,
            None => {
                let name = self.catalog.name_arc(sid);
                match self.catalog.lookup_name(&name) {
                    Some(registered) => registered.template.resource_request(),
                    None => return,
                }
            }
        };
        let site = &mut self.clusters[cluster.0];
        let booked = site.admitted.get(&sid).map_or(0, |&(_, r)| r);
        if replicas > booked {
            site.allocated.add(&demand, replicas - booked);
        } else {
            site.allocated.remove(&demand, booked - replicas);
        }
        if replicas == 0 {
            site.admitted.remove(&sid);
        } else {
            site.admitted.insert(sid, (demand, replicas));
        }
        if site.allocated.exceeds(&site.capacity) {
            self.stats.capacity_violations += 1;
        }
    }

    /// Autoscale clamp: the largest total replica count of `sid` that fits
    /// on `cluster` (its current booking counts as already paid for).
    /// Unlimited capacity grants everything.
    fn max_replicas_within_capacity(&self, cluster: ClusterId, sid: ServiceId, want: u32) -> u32 {
        let site = &self.clusters[cluster.0];
        if site.capacity.is_unlimited() {
            return want;
        }
        let (demand, booked) = match site.admitted.get(&sid) {
            Some(&(demand, booked)) => (demand, booked),
            None => {
                let name = self.catalog.name_arc(sid);
                match self.catalog.lookup_name(&name) {
                    Some(registered) => (registered.template.resource_request(), 0),
                    None => return want,
                }
            }
        };
        if want <= booked {
            return want;
        }
        let mut extra = want - booked;
        if demand.cpu_millis > 0 && site.capacity.cpu_millis != u32::MAX {
            let free =
                u64::from(site.capacity.cpu_millis).saturating_sub(site.allocated.cpu_millis);
            extra =
                extra.min(u32::try_from(free / u64::from(demand.cpu_millis)).unwrap_or(u32::MAX));
        }
        if demand.memory_mib > 0 && site.capacity.memory_mib != u64::MAX {
            let free = site
                .capacity
                .memory_mib
                .saturating_sub(site.allocated.memory_mib);
            extra = extra.min(u32::try_from(free / demand.memory_mib).unwrap_or(u32::MAX));
        }
        if site.capacity.max_replicas != u32::MAX {
            extra = extra.min(
                site.capacity
                    .max_replicas
                    .saturating_sub(site.allocated.replicas),
            );
        }
        booked + extra
    }

    /// Seed the [`DeploymentRecord`] common to both engines.
    fn record_seed(
        &self,
        now: SimTime,
        cluster: ClusterId,
        waited: bool,
        name: &str,
    ) -> DeploymentRecord {
        DeploymentRecord {
            service: name.to_owned(),
            cluster,
            kind: self.clusters[cluster.0].backend.kind(),
            triggered_at: now,
            pull: None,
            create: None,
            scale_up: None,
            ready_detected: SimTime::FAR_FUTURE,
            waited,
        }
    }

    /// Reference engine only: run the synchronous pipeline (piggybacking on
    /// a recorded in-flight readiness instant); returns the readiness instant
    /// or `None` on failure.
    fn ensure_deployed_reference(
        &mut self,
        now: SimTime,
        cluster: ClusterId,
        id: ServiceId,
        template: &cluster::ServiceTemplate,
        waited: bool,
    ) -> Option<SimTime> {
        {
            let Engine::Reference(r) = &self.engine else {
                unreachable!("reference engine required")
            };
            if let Some(&t) = r.pending.get(&(cluster, id)) {
                if t > now {
                    return Some(t); // piggyback on the in-flight deployment
                }
            }
        }
        let record = self.record_seed(now, cluster, waited, template.name.as_str());
        let probe_rtt = self.clusters[cluster.0].distances[0] * 2;
        let mut ctx = StepCtx {
            backend: self.clusters[cluster.0].backend.as_mut(),
            registries: &self.registries,
            retries: self.config.deploy_retries,
            backoff: self.config.retry_backoff,
            probe_interval: self.config.probe_interval,
            probe_timeout: self.config.probe_timeout,
            probe_rtt,
        };
        match reference::deploy(now, template, record, &mut ctx) {
            reference::Outcome::AlreadyReady => {
                self.book(cluster, id, template.resource_request(), 1);
                Some(now)
            }
            reference::Outcome::Ready { record, retried } => {
                self.book(cluster, id, template.resource_request(), 1);
                self.stats.retried_operations += retried;
                let ready_detected = record.ready_detected;
                self.stats.deployments.push(*record);
                self.scaled_to_zero.remove(&(cluster, id));
                let Engine::Reference(r) = &mut self.engine else {
                    unreachable!("reference engine required")
                };
                r.pending.insert((cluster, id), ready_detected);
                Some(ready_detected)
            }
            reference::Outcome::Failed { retried } => {
                self.stats.retried_operations += retried;
                self.stats.failed_deployments += 1;
                None
            }
        }
    }

    /// Stepped engine only: start a deployment machine at `now` (steps
    /// already due run on the next pump, same call stack). Returns the
    /// machine's index.
    fn start_machine(
        &mut self,
        now: SimTime,
        cluster: ClusterId,
        sid: ServiceId,
        template: &Arc<cluster::ServiceTemplate>,
        waited: bool,
        proactive: bool,
    ) -> usize {
        self.book(cluster, sid, template.resource_request(), 1);
        let record = self.record_seed(now, cluster, waited, template.name.as_str());
        let backend = &mut self.clusters[cluster.0].backend;
        let status = backend.status(now, &template.name);
        let images_cached = backend.has_images(template);
        // The machine owns the displaced Remove-phase bookkeeping so a
        // failure can restore it.
        let saved = self.scaled_to_zero.remove(&(cluster, sid));
        let Engine::Stepped(d) = &mut self.engine else {
            unreachable!("stepped engine required")
        };
        let m = d.start(
            now,
            cluster,
            sid,
            Arc::clone(template),
            record,
            images_cached,
            status.created,
            saved,
        );
        m.proactive = proactive;
        d.machines.len() - 1
    }

    /// Advance every machine whose next step is due at or before `now`,
    /// appending any outputs produced by terminal transitions.
    fn pump_machines(&mut self, now: SimTime, out: &mut Vec<ControllerOutput>) {
        loop {
            let (idx, outcome) = {
                let Engine::Stepped(d) = &mut self.engine else {
                    return;
                };
                let Some(idx) = d.due_index(now) else {
                    return;
                };
                let m = &mut d.machines[idx];
                let cluster_idx = m.cluster.0;
                let probe_rtt = self.clusters[cluster_idx].distances[0] * 2;
                let mut ctx = StepCtx {
                    backend: self.clusters[cluster_idx].backend.as_mut(),
                    registries: &self.registries,
                    retries: self.config.deploy_retries,
                    backoff: self.config.retry_backoff,
                    probe_interval: self.config.probe_interval,
                    probe_timeout: self.config.probe_timeout,
                    probe_rtt,
                };
                (idx, m.advance(&mut ctx))
            };
            match outcome {
                MachineOutcome::Progressed => {}
                MachineOutcome::Recovered => self.stats.crash_recoveries += 1,
                MachineOutcome::Ready { ready_detected } => {
                    self.finalize_machine(idx, ready_detected, out)
                }
                MachineOutcome::Failed { phase, error } => {
                    self.fail_machine(idx, phase, error, out)
                }
            }
        }
    }

    /// A machine reached `Ready`: record the deployment, release every held
    /// request to the fresh instance, schedule the piggybacked retarget.
    fn finalize_machine(
        &mut self,
        idx: usize,
        ready_detected: SimTime,
        out: &mut Vec<ControllerOutput>,
    ) {
        let mut m = {
            let Engine::Stepped(d) = &mut self.engine else {
                unreachable!("stepped engine required")
            };
            let m = d.remove(idx);
            d.record_completed(m.seq);
            m
        };
        m.record.ready_detected = ready_detected;
        self.stats.retried_operations += m.retried;
        self.stats.deployments.push(m.record.clone());
        if m.proactive {
            self.stats.proactive_deployments += 1;
        }
        self.scaled_to_zero.remove(&(m.cluster, m.service));
        self.gate_release(ready_detected, m.cluster, m.service);
        self.push_delta(ready_detected, m.cluster, m.service, DeltaKind::Ready);
        if m.wants_retarget {
            self.schedule_retarget(ready_detected, m.cluster, m.service);
        }
        for w in m.waiters.drain(..) {
            self.stats.held_requests += 1;
            let target = self.pick_instance(ready_detected, m.cluster, m.service);
            self.redirect_outputs(
                ready_detected.max(w.decide_at),
                w.sw,
                w.key,
                m.service,
                target,
                m.cluster,
                w.in_port,
                Some(w.buffer_id),
                out,
            );
        }
    }

    /// A machine reached `Failed`: count the failure, restore Remove-phase
    /// bookkeeping, and fall every held request back to the cloud.
    fn fail_machine(
        &mut self,
        idx: usize,
        phase: DeployPhaseKind,
        error: DeployError,
        out: &mut Vec<ControllerOutput>,
    ) {
        let m = {
            let Engine::Stepped(d) = &mut self.engine else {
                unreachable!("stepped engine required")
            };
            d.remove(idx)
        };
        let revoked = matches!(error, DeployError::LeaseRevoked);
        self.release_booking(m.cluster, m.service);
        self.stats.retried_operations += m.retried;
        self.stats.failed_deployments += 1;
        self.last_deploy_failure = Some(DeployFailure {
            cluster: m.cluster,
            service: m.service,
            phase,
            error,
        });
        if let Some(at) = m.saved_scaled_to_zero {
            self.scaled_to_zero
                .entry((m.cluster, m.service))
                .or_insert(at);
        }
        let failed_at = m.next_step;
        self.gate_release(failed_at, m.cluster, m.service);
        self.push_delta(failed_at, m.cluster, m.service, DeltaKind::Gone);
        for w in m.waiters {
            // Drop the pending placeholder; the request is served by the
            // cloud (matching the reference path). A lease-revoked abort is
            // not a real failure — the winning shard's instance is coming up
            // — so its waiters are memorized cloud-bound, giving them the
            // same retarget-on-Ready a loser that rejected at the gate gets.
            if self.memory.get(w.key).is_some_and(|f| f.pending) {
                self.memory.forget(w.key);
            }
            let memorize = if revoked { Some(m.service) } else { None };
            self.cloud_outputs(
                w.decide_at,
                w.sw,
                w.packet,
                w.in_port,
                w.buffer_id,
                memorize,
                out,
            );
        }
    }

    /// Note that a BEST deployment will become ready at `ready_at`; the flow
    /// move to it is computed when the instant is drained, so requests served
    /// in the meantime are retargeted too (paper Fig. 3: "future requests are
    /// redirected to this optimal location as soon as the new instance is
    /// running").
    fn schedule_retarget(&mut self, ready_at: SimTime, cluster: ClusterId, service: ServiceId) {
        self.retarget_queue.push((ready_at, cluster, service));
    }

    // -----------------------------------------------------------------------
    // The wakeup surface — the single interface the event loop drives
    // -----------------------------------------------------------------------

    /// The earliest instant any controller-internal work is due: a machine
    /// step, a pending flow retarget, FlowMemory expiry / Remove-phase
    /// housekeeping, or a predict tick. The event loop schedules exactly one
    /// wakeup event at this instant (re-arming after every event).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut merge = |t: SimTime| {
            next = Some(next.map_or(t, |n: SimTime| n.min(t)));
        };
        if let Engine::Stepped(d) = &self.engine {
            if let Some(t) = d.next_step_at() {
                merge(t);
            }
        }
        if let Some(t) = self.retarget_queue.iter().map(|(at, _, _)| *at).min() {
            merge(t);
        }
        if self.config.scale_down_idle {
            if let Some(t) = self.memory.next_expiry() {
                merge(t);
            }
            if let Some(t) = self.scale_down_retries.iter().map(|(at, _, _)| *at).min() {
                merge(t);
            }
        }
        if let Some(remove_after) = self.config.remove_after {
            if let Some(&soonest) = self.scaled_to_zero.values().min() {
                merge(soonest + remove_after);
            }
        }
        if let Some(p) = &self.predict {
            if let Some(t) = p.next_due_at() {
                merge(t);
            }
        }
        next
    }

    /// Run every piece of controller-internal work due at or before `now`:
    /// predict ticks, deployment machine steps, retarget drains and
    /// housekeeping, in that order (matching the event order of the previous
    /// per-surface events). Idempotent on spurious or early wakeups — every
    /// component checks its own due instant.
    pub fn on_wakeup(&mut self, now: SimTime) -> Vec<ControllerOutput> {
        let mut out = Vec::new();
        self.on_wakeup_into(now, &mut out);
        out
    }

    /// [`Controller::on_wakeup`] appending into a caller-owned buffer (the
    /// allocation-free form the testbed's event loop drives).
    pub fn on_wakeup_into(&mut self, now: SimTime, out: &mut Vec<ControllerOutput>) {
        self.run_predict_due(now);
        self.pump_machines(now, out);
        self.drain_retargets(now, out);
        self.run_housekeeping(now);
    }

    /// Arm the proactive-deployment cadence: run a predict pass at `first`,
    /// then every `interval` until `last` (inclusive), each looking `horizon`
    /// ahead. Replaces the event loop's pre-pushed predict ticks.
    pub fn set_predict_schedule(
        &mut self,
        first: SimTime,
        interval: SimDuration,
        last: SimTime,
        horizon: SimDuration,
    ) {
        self.predict = Some(PredictSchedule {
            next: first,
            interval,
            end: last,
            horizon,
        });
    }

    /// Deployments currently in flight (stepped: live machines; reference:
    /// pending entries whose readiness instant lies in the future). Drives
    /// the coherence audit's orphaned-pending check.
    pub fn in_flight_deployments(&self, now: SimTime) -> Vec<(ServiceId, ClusterId)> {
        match &self.engine {
            Engine::Stepped(d) => d.machines.iter().map(|m| (m.service, m.cluster)).collect(),
            Engine::Reference(r) => r
                .pending
                .iter()
                .filter(|(_, &t)| t > now)
                .map(|(&(c, s), _)| (s, c))
                .collect(),
        }
    }

    /// Coarse phase of the in-flight deployment of `service` on `cluster`,
    /// if one exists (stepped engine only — the reference pipeline never has
    /// an observable in-flight phase).
    pub fn deployment_phase(
        &self,
        cluster: ClusterId,
        service: ServiceId,
    ) -> Option<DeployPhaseKind> {
        match &self.engine {
            Engine::Stepped(d) => d.find(cluster, service).map(|i| d.machines[i].phase.kind()),
            Engine::Reference(_) => None,
        }
    }

    /// The most recent deployment failure observed by the dispatcher —
    /// which phase gave up and why (stepped engine only; `None` until a
    /// machine fails).
    pub fn last_deploy_failure(&self) -> Option<&DeployFailure> {
        self.last_deploy_failure.as_ref()
    }

    /// How many deployment machines have been started so far (the reference
    /// engine reports completed deployments — every start completes within
    /// the same call there).
    pub fn machines_started(&self) -> u64 {
        match &self.engine {
            Engine::Stepped(d) => d.next_seq(),
            Engine::Reference(_) => self.stats.deployments.len() as u64,
        }
    }

    /// Did any deployment machine with start ordinal in `[lo, hi)` complete
    /// successfully? (Under the reference engine starts complete
    /// synchronously, so the window itself is the answer.)
    pub fn completed_machine_in(&self, lo: u64, hi: u64) -> bool {
        match &self.engine {
            Engine::Stepped(d) => d.completed_in(lo, hi),
            Engine::Reference(_) => lo < hi,
        }
    }

    // -----------------------------------------------------------------------
    // Mesh federation surface (the `edgemesh` crate drives these)
    // -----------------------------------------------------------------------

    /// Take the status deltas produced since the last drain. Empty unless the
    /// controller was built with [`ControllerBuilder::emit_status_deltas`].
    pub fn drain_status_deltas(&mut self) -> Vec<StatusDelta> {
        std::mem::take(&mut self.status_deltas)
    }

    /// Abort the in-flight deployment machine for `(cluster, service)`: the
    /// deployment lease was revoked because another shard won the
    /// window-boundary merge for the same decision. Routes through the
    /// ordinary failure path ([`DeployError::LeaseRevoked`]) so bookings are
    /// released, Remove-phase bookkeeping is restored, a `Gone` delta is
    /// emitted and every held request falls back to the cloud. Returns the
    /// resulting controller outputs; `None` if no such machine is in flight
    /// (or the reference pipeline is active — it deploys synchronously and
    /// has no abortable window).
    pub fn abort_deployment(
        &mut self,
        now: SimTime,
        cluster: ClusterId,
        service: ServiceId,
    ) -> Option<Vec<ControllerOutput>> {
        let idx = {
            let Engine::Stepped(d) = &mut self.engine else {
                return None;
            };
            let idx = d.find(cluster, service)?;
            // Fail at the abort instant, not the machine's own next step:
            // `fail_machine` stamps the failure (and the `Gone` delta) with
            // `next_step`.
            d.machines[idx].next_step = now;
            idx
        };
        let phase = {
            let Engine::Stepped(d) = &self.engine else {
                unreachable!("checked above")
            };
            d.machines[idx].phase.kind()
        };
        let mut out = Vec::new();
        self.fail_machine(idx, phase, DeployError::LeaseRevoked, &mut out);
        Some(out)
    }

    /// Apply a status delta gossiped from a mesh peer. `Ready` schedules a
    /// retarget of every memorized flow of the service toward the announced
    /// instance (validated against the shared backend when the retarget
    /// drains, so a raced scale-down is harmless); `Gone` is recorded only —
    /// FlowMemory recall already re-checks backend readiness, so stale
    /// entries self-heal on the next PacketIn.
    pub fn apply_remote_delta(&mut self, now: SimTime, delta: &StatusDelta) {
        self.stats.remote_deltas += 1;
        match delta.kind {
            DeltaKind::Ready => self.schedule_retarget(now, delta.cluster, delta.service),
            DeltaKind::Gone => {}
        }
    }

    fn gate_acquire(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId) -> bool {
        match &mut self.gate {
            Some(g) => g.try_acquire(now, cluster, service),
            None => true,
        }
    }

    fn gate_release(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId) {
        if let Some(g) = &mut self.gate {
            g.release(now, cluster, service);
        }
    }

    fn push_delta(
        &mut self,
        origin: SimTime,
        cluster: ClusterId,
        service: ServiceId,
        kind: DeltaKind,
    ) {
        if self.emit_deltas {
            self.status_deltas.push(StatusDelta {
                origin,
                cluster,
                service,
                kind,
            });
        }
    }

    /// Append the FlowMods produced by retargets due at or before `upto`.
    fn drain_retargets(&mut self, upto: SimTime, outputs: &mut Vec<ControllerOutput>) {
        // Fast path: most wakeups have no due retarget — don't shuffle the
        // queue (three Vec builds) just to discover that.
        if !self.retarget_queue.iter().any(|item| item.0 <= upto) {
            return;
        }
        let mut due: Vec<(SimTime, ClusterId, ServiceId)> = Vec::new();
        let mut remaining: Vec<(SimTime, ClusterId, ServiceId)> = Vec::new();
        for item in std::mem::take(&mut self.retarget_queue) {
            if item.0 <= upto {
                due.push(item);
            } else {
                remaining.push(item);
            }
        }
        self.retarget_queue = remaining;
        for (at, cluster, service) in due {
            let name = self.catalog.name_arc(service);
            let status = self.clusters[cluster.0].backend.status(at, &name);
            let Some(target) = status.endpoint.filter(|_| status.is_ready()) else {
                continue; // instance vanished before the hand-over
            };
            let moved = self.memory.retarget_service(service, target, cluster);
            self.stats.retargets += moved.len() as u64;
            for key in moved {
                if let Some((sw, client_port)) = self.client_ports.get(&key.client_ip).copied() {
                    let pair = flow_pair(
                        self.config.flow_priority,
                        key,
                        target,
                        self.clusters[cluster.0].ports[sw.0],
                        client_port,
                        Some(self.config.switch_idle_timeout),
                        cookie_for(&name),
                    );
                    outputs.extend(pair.into_iter().map(|spec| ControllerOutput::FlowMod {
                        at,
                        switch: sw,
                        spec,
                    }));
                    self.host_route_outputs(at, sw, key.client_ip, client_port, outputs);
                }
            }
        }
    }

    /// Run every predict pass due at or before `now`.
    fn run_predict_due(&mut self, now: SimTime) {
        loop {
            let Some(p) = &mut self.predict else { return };
            if p.next > now || p.next > p.end {
                return;
            }
            let (t, horizon) = (p.next, p.horizon);
            p.next = t + p.interval;
            self.run_predict(t, horizon);
        }
    }

    /// Ask the predictor which services should be running within `horizon`
    /// and pre-deploy the ones that are not (background, never holds a
    /// request).
    fn run_predict(&mut self, now: SimTime, horizon: SimDuration) {
        let nominations = self.predictor.predict(now, horizon);
        for addr in nominations {
            let Some(service) = self.catalog.lookup(addr) else {
                continue;
            };
            let sid = service.id;
            let template = Arc::clone(&service.template);
            let name = self.catalog.name_arc(sid);
            // Already running (or being deployed) somewhere? Nothing to do.
            let anywhere_ready = (0..self.clusters.len())
                .any(|i| self.clusters[i].backend.status(now, &name).is_ready());
            let in_flight = match &self.engine {
                Engine::Stepped(d) => d.any_for_service(sid),
                Engine::Reference(r) => r.pending.iter().any(|(&(_, n), &t)| n == sid && t > now),
            };
            if anywhere_ready || in_flight {
                continue;
            }
            // Deploy at the cluster the Global Scheduler would pick for the
            // future (BEST semantics with no requesting client).
            let mut views = std::mem::take(&mut self.views_scratch);
            self.cluster_views_into(now, sid, 0, &name, &mut views);
            let ctx = SchedulingContext::new(
                sid,
                &views,
                template.resource_request(),
                &template.requirements,
                &self.catalog,
                now,
            );
            let decision = self.global.decide(&ctx);
            views.clear();
            self.views_scratch = views;
            let Some(target) = decision.target_for_future() else {
                continue;
            };
            // Nothing is in flight here (checked above); admission applies.
            if self.admit(target, sid, &template).is_err() {
                continue;
            }
            match self.engine {
                Engine::Reference(_) => {
                    if self
                        .ensure_deployed_reference(now, target, sid, &template, false)
                        .is_some()
                    {
                        self.stats.proactive_deployments += 1;
                    }
                }
                Engine::Stepped(_) => {
                    if !self.gate_acquire(now, target, sid) {
                        self.stats.lease_rejections += 1;
                        continue;
                    }
                    // Counted as proactive when (and if) the machine
                    // completes, mirroring the reference's success-only count.
                    self.start_machine(now, target, sid, &template, false, true);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Housekeeping tick: FlowMemory expiry and idle scale-down
    // -----------------------------------------------------------------------

    /// Expiry housekeeping, run from [`Controller::on_wakeup`] when a flow
    /// expiry or Remove-phase deadline is due (early wakeups are no-ops, so
    /// the pass fires at the same instants the dedicated tick events used
    /// to).
    fn run_housekeeping(&mut self, now: SimTime) {
        let expiry_due =
            self.config.scale_down_idle && self.memory.next_expiry().is_some_and(|t| t <= now);
        let retry_due = self.config.scale_down_idle
            && self.scale_down_retries.iter().any(|&(at, _, _)| at <= now);
        let remove_due = self.config.remove_after.is_some_and(|remove_after| {
            self.scaled_to_zero
                .values()
                .min()
                .is_some_and(|&at| now.since(at) >= remove_after)
        });
        if !expiry_due && !retry_due && !remove_due {
            return;
        }

        // Replica autoscaling: keep flows-per-replica near the target.
        if let Some(target) = self.config.autoscale_flows_per_replica {
            let target = target.max(1);
            for (service, cluster, flows) in self.memory.services_with_flows() {
                let Some(cluster) = cluster else {
                    continue; // cloud-served flows have no replicas to scale
                };
                let name = self.catalog.name_arc(service);
                let backend = &mut self.clusters[cluster.0].backend;
                let status = backend.status(now, &name);
                if !status.created {
                    continue;
                }
                let want = (flows as u32).div_ceil(target);
                let have = status.desired_replicas.max(status.ready_replicas);
                if want <= have {
                    continue;
                }
                // Admission: never scale past the site's declared capacity.
                let granted = self.max_replicas_within_capacity(cluster, service, want);
                if granted < want {
                    self.stats.admission_rejections += 1;
                    self.last_admission_error = Some(AdmissionError::Capacity {
                        cluster,
                        shortfall: cluster::CapacityShortfall::Replicas {
                            requested: want,
                            free: granted,
                        },
                    });
                }
                if granted > have
                    && self.clusters[cluster.0]
                        .backend
                        .scale_up(now, &name, granted)
                        .is_ok()
                {
                    self.stats.autoscale_ups += 1;
                    self.set_booked_replicas(cluster, service, granted);
                }
            }
        }

        let expired = self.memory.expire(now);
        if self.config.scale_down_idle {
            // Group by (service, cluster); scale down instances nobody
            // references anymore. Candidates whose backend call failed on an
            // earlier pass retry once their back-off is due.
            let mut candidates: Vec<(ServiceId, ClusterId)> = expired
                .iter()
                .filter_map(|f| f.cluster.map(|c| (f.service, c)))
                .collect();
            let mut waiting: Vec<(SimTime, ClusterId, ServiceId)> = Vec::new();
            for (at, cluster, service) in std::mem::take(&mut self.scale_down_retries) {
                if at <= now {
                    candidates.push((service, cluster));
                } else {
                    waiting.push((at, cluster, service));
                }
            }
            self.scale_down_retries = waiting;
            candidates.sort();
            candidates.dedup();
            for (service, cluster) in candidates {
                if self.memory.flows_for_service(service, Some(cluster)) == 0 {
                    let name = self.catalog.name_arc(service);
                    let backend = &mut self.clusters[cluster.0].backend;
                    if backend.status(now, &name).ready_replicas == 0 {
                        continue; // already down (or never revived)
                    }
                    if backend.scale_down(now, &name, 0).is_ok() {
                        self.stats.scale_downs += 1;
                        self.release_booking(cluster, service);
                        self.push_delta(now, cluster, service, DeltaKind::Gone);
                        if let Engine::Reference(r) = &mut self.engine {
                            r.pending.remove(&(cluster, service));
                        }
                        self.scaled_to_zero.insert((cluster, service), now);
                    } else {
                        // Transient backend fault (e.g. a flaky cluster API):
                        // keep the instance a candidate and retry after the
                        // configured back-off instead of leaking it forever.
                        self.scale_down_retries.push((
                            now + self.config.retry_backoff,
                            cluster,
                            service,
                        ));
                    }
                }
            }
        }

        // Remove phase (Fig. 4): services idle at zero replicas long enough
        // are deleted entirely; their cached images stay on disk, so a later
        // request pays Create + Scale-Up but not Pull.
        if let Some(remove_after) = self.config.remove_after {
            let due: Vec<(ClusterId, ServiceId)> = self
                .scaled_to_zero
                .iter()
                .filter(|(_, &at)| now.since(at) >= remove_after)
                .map(|(&k, _)| k)
                .collect();
            for (cluster, service) in due {
                let name = self.catalog.name_arc(service);
                let backend = &mut self.clusters[cluster.0].backend;
                // A request may have revived the service in the meantime.
                if backend.status(now, &name).ready_replicas == 0
                    && backend.remove(now, &name).is_ok()
                {
                    self.stats.removals += 1;
                    self.release_booking(cluster, service);
                    self.push_delta(now, cluster, service, DeltaKind::Gone);
                }
                self.scaled_to_zero.remove(&(cluster, service));
            }
        }
    }

    /// Local-Scheduler instance selection: pick one ready replica endpoint
    /// of `service` on `cluster` (paper Fig. 6's Local Scheduler; for
    /// Kubernetes the Service VIP balances internally, so one endpoint is
    /// returned and the choice is a no-op).
    fn pick_instance(
        &mut self,
        now: SimTime,
        cluster: ClusterId,
        service: ServiceId,
    ) -> SocketAddr {
        let name = self.catalog.name_arc(service);
        // Snapshot hit: pick straight out of the cached endpoint list.
        if let Some((_, endpoints)) = self.clusters[cluster.0].snapshot(now, service, &name) {
            assert!(
                !endpoints.is_empty(),
                "pick_instance on a service with no ready replica"
            );
            let n = endpoints.len();
            let idx = (self.local.pick(service, n as u32) as usize).min(n - 1);
            return self.clusters[cluster.0].snap_cache[service.0 as usize]
                .as_ref()
                .expect("snapshot just validated")
                .endpoints[idx];
        }
        let mut endpoints = std::mem::take(&mut self.endpoints_scratch);
        endpoints.clear();
        self.clusters[cluster.0]
            .backend
            .replica_endpoints_into(now, &name, &mut endpoints);
        assert!(
            !endpoints.is_empty(),
            "pick_instance on a service with no ready replica"
        );
        let idx = self.local.pick(service, endpoints.len() as u32) as usize;
        let chosen = endpoints[idx.min(endpoints.len() - 1)];
        self.endpoints_scratch = endpoints;
        chosen
    }

    // -----------------------------------------------------------------------
    // Output builders
    // -----------------------------------------------------------------------

    /// Install forward+reverse rewrite flows on the client's ingress switch
    /// (plus host routes on the other switches so responses find a roamed
    /// client) and release the buffered packet.
    #[allow(clippy::too_many_arguments)]
    fn redirect_outputs(
        &mut self,
        at: SimTime,
        sw: SwitchId,
        key: FlowKey,
        service: ServiceId,
        target: SocketAddr,
        cluster: ClusterId,
        client_port: PortId,
        buffer: Option<BufferId>,
        out: &mut Vec<ControllerOutput>,
    ) {
        self.memory
            .remember(at, key, service, target, Some(cluster));
        let pair = flow_pair(
            self.config.flow_priority,
            key,
            target,
            self.clusters[cluster.0].ports[sw.0],
            client_port,
            Some(self.config.switch_idle_timeout),
            cookie_for(self.catalog.name_of(service)),
        );
        out.extend(pair.into_iter().map(|spec| ControllerOutput::FlowMod {
            at,
            switch: sw,
            spec,
        }));
        self.host_route_outputs(at, sw, key.client_ip, client_port, out);
        if let Some(buffer_id) = buffer {
            out.push(ControllerOutput::ReleaseViaTable {
                at,
                switch: sw,
                buffer_id,
            });
        }
    }

    /// Host routes steering traffic for `client_ip` toward its current
    /// ingress switch from every other switch (needed once clients roam
    /// between switches; no-ops in single-switch setups).
    fn host_route_outputs(
        &self,
        at: SimTime,
        client_sw: SwitchId,
        client_ip: IpAddr,
        _client_port: PortId,
        outputs: &mut Vec<ControllerOutput>,
    ) {
        for s in 0..self.switch_count() {
            if s == client_sw.0 {
                continue;
            }
            // Toward the client's switch: in the chain fabric the trunk in
            // the client's direction is the same port that leads to any
            // destination behind that switch; we reuse the cloud-or-trunk
            // port toward switch `client_sw` — which, for a chain rooted at
            // switch 0, is port 1 when client_sw > s, else port 0.
            let port = if client_sw.0 > s {
                PortId(1)
            } else {
                PortId(0)
            };
            let matcher = FlowMatch {
                dst_ip: Some(client_ip),
                ..FlowMatch::default()
            };
            outputs.push(ControllerOutput::FlowMod {
                at,
                switch: SwitchId(s),
                spec: FlowSpec::new(matcher)
                    .priority(self.config.flow_priority - 1)
                    .action(Action::Output(port))
                    .idle(self.config.switch_idle_timeout)
                    .cookie(cookie_for("host-route")),
            });
        }
    }

    /// Pass-through to the cloud: forward unchanged, bring responses back.
    /// For *registered* services the decision is memorized (with no edge
    /// cluster) so a later BEST deployment can retarget it.
    #[allow(clippy::too_many_arguments)]
    fn cloud_outputs(
        &mut self,
        at: SimTime,
        sw: SwitchId,
        packet: Packet,
        client_port: PortId,
        buffer_id: BufferId,
        service: Option<ServiceId>,
        outputs: &mut Vec<ControllerOutput>,
    ) {
        self.stats.cloud_forwards += 1;
        if let Some(service) = service {
            let key = FlowKey {
                client_ip: packet.src.ip,
                service_addr: packet.dst,
            };
            self.memory.remember(at, key, service, packet.dst, None);
        }
        let cookie = cookie_for("cloud");
        outputs.push(ControllerOutput::FlowMod {
            at,
            switch: sw,
            spec: FlowSpec::new(FlowMatch::client_to_service(packet.src.ip, packet.dst))
                .priority(self.config.flow_priority)
                .action(Action::Output(self.cloud_ports[sw.0]))
                .idle(self.config.switch_idle_timeout)
                .cookie(cookie),
        });
        let reverse_matcher = FlowMatch {
            protocol: Some(packet.protocol),
            src_ip: Some(packet.dst.ip),
            src_port: Some(packet.dst.port),
            dst_ip: Some(packet.src.ip),
            ..FlowMatch::default()
        };
        outputs.push(ControllerOutput::FlowMod {
            at,
            switch: sw,
            spec: FlowSpec::new(reverse_matcher)
                .priority(self.config.flow_priority)
                .action(Action::Output(client_port))
                .idle(self.config.switch_idle_timeout)
                .cookie(cookie),
        });
        self.host_route_outputs(at, sw, packet.src.ip, client_port, outputs);
        outputs.push(ControllerOutput::ReleaseViaTable {
            at,
            switch: sw,
            buffer_id,
        });
    }
}

/// Forward + reverse rewrite rules for one client↔service redirect on the
/// client's ingress switch (paper Fig. 2: the rewrite must be transparent in
/// both directions). Returns bare [`FlowSpec`]s; the caller stamps them with
/// the emission time and target switch.
fn flow_pair(
    priority: u16,
    key: FlowKey,
    target: SocketAddr,
    cluster_port: PortId,
    client_port: PortId,
    idle_timeout: Option<SimDuration>,
    cookie: u64,
) -> [FlowSpec; 2] {
    let forward = FlowSpec::new(FlowMatch::client_to_service(
        key.client_ip,
        key.service_addr,
    ))
    .priority(priority)
    // Chained `.action()` stays in the ActionList's inline storage — no
    // heap allocation on the per-request install path.
    .action(Action::SetDstIp(target.ip))
    .action(Action::SetDstPort(target.port))
    .action(Action::Output(cluster_port))
    .idle_opt(idle_timeout)
    .cookie(cookie);
    // Response path: rewrite the edge instance's address back to the cloud
    // address the client thinks it is talking to.
    let reverse_matcher = FlowMatch {
        protocol: Some(simnet::Protocol::Tcp),
        src_ip: Some(target.ip),
        src_port: Some(target.port),
        dst_ip: Some(key.client_ip),
        ..FlowMatch::default()
    };
    let reverse = FlowSpec::new(reverse_matcher)
        .priority(priority)
        .action(Action::SetSrcIp(key.service_addr.ip))
        .action(Action::SetSrcPort(key.service_addr.port))
        .action(Action::Output(client_port))
        .idle_opt(idle_timeout)
        .cookie(cookie);
    let pair = [forward, reverse];
    #[cfg(debug_assertions)]
    debug_check_flow_pair(&pair, key, target);
    pair
}

/// Check-on-install hook (debug builds): the forward/reverse pair must be a
/// transparent mirror — the client's packet reaches `target`, and the reply
/// leaves re-addressed as the cloud service. A pair that fails this would
/// break the paper's transparency invariant silently, so it is a programming
/// error worth an assert rather than a runtime `Violation`.
#[cfg(debug_assertions)]
fn debug_check_flow_pair(pair: &[FlowSpec; 2], key: FlowKey, target: SocketAddr) {
    use simnet::Packet;

    let client = SocketAddr::new(key.client_ip, 40000);
    let syn = Packet::syn(client, key.service_addr, 0);
    debug_assert!(
        pair[0].matcher.matches(&syn),
        "forward rule must match the client's service-addressed packet"
    );
    let mut p = syn;
    for a in &pair[0].actions {
        match a {
            Action::SetDstIp(ip) => p.dst.ip = *ip,
            Action::SetDstPort(port) => p.dst.port = *port,
            _ => {}
        }
    }
    debug_assert_eq!(p.dst, target, "forward rule must rewrite to the target");

    let reply = Packet::syn(target, client, 0);
    debug_assert!(
        pair[1].matcher.matches(&reply),
        "reverse rule must match the instance's reply"
    );
    let mut r = reply;
    for a in &pair[1].actions {
        match a {
            Action::SetSrcIp(ip) => r.src.ip = *ip,
            Action::SetSrcPort(port) => r.src.port = *port,
            _ => {}
        }
    }
    debug_assert_eq!(
        r.src, key.service_addr,
        "reverse rule must restore the cloud service address"
    );
}

/// Stable cookie derived from the service name (diagnostics only).
fn cookie_for(service: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in service.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
