//! The Dispatcher: the paper's deployment pipeline (Fig. 4, Pull → Create →
//! Scale-Up → poll port) as an explicit per-deployment **state machine**
//! advanced by discrete controller wakeups.
//!
//! The paper's architecture (Figs. 3–5) runs deployments *concurrently* with
//! packet handling — that is the whole point of on-demand deployment
//! "without waiting". Each in-flight deployment is one `DeployMachine`
//! stepping through
//!
//! ```text
//! Pulling → Creating → ScalingUp → Probing → Ready
//!     \________\___________\__________/
//!                  Failed { phase, error }
//! ```
//!
//! Every step is issued at a recorded virtual instant (`next_step`), so the
//! observable timeline — phase durations, probe cadence, readiness instants —
//! is identical to the historical synchronous pipeline, which is retained
//! verbatim in [`mod@reference`] as the equivalence oracle for the lockstep
//! property test. What the state machine adds is *interleaving*: backend
//! faults (a crash injected between phases or during the probe window) now
//! land while a deployment is mid-flight and are observed by the next step,
//! which can retry the phase or fail over to the cloud.

use std::sync::Arc;

use cluster::{ClusterBackend, ClusterError, ServiceTemplate};
use registry::RegistrySet;
use simcore::{SimDuration, SimTime};
use simnet::openflow::{BufferId, PortId};
use simnet::Packet;

use crate::catalog::ServiceId;
use crate::controller::{DeploymentRecord, SwitchId};
use crate::flowmemory::FlowKey;
use crate::scheduler::ClusterId;

/// Which pipeline phase a deployment machine is in (coarse, introspective
/// view — [`crate::Controller::deployment_phase`] reports this for tests and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployPhaseKind {
    Pulling,
    Creating,
    ScalingUp,
    Probing,
}

impl std::fmt::Display for DeployPhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployPhaseKind::Pulling => f.write_str("Pulling"),
            DeployPhaseKind::Creating => f.write_str("Creating"),
            DeployPhaseKind::ScalingUp => f.write_str("ScalingUp"),
            DeployPhaseKind::Probing => f.write_str("Probing"),
        }
    }
}

/// Why a deployment machine ended in `Failed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// A phase exhausted its retries on a backend error.
    Cluster(ClusterError),
    /// The port never opened within the probe window.
    ProbeTimeout { deadline: SimTime },
    /// The deployment lease on `(cluster, service)` was revoked: another
    /// controller shard won the window-boundary merge for the same
    /// deployment decision, so this machine is aborted mid-flight
    /// ([`crate::Controller::abort_deployment`]).
    LeaseRevoked,
}

/// Why admission control refused to start a deployment at a site. A scheduler
/// [`crate::Decision`] is advisory — the dispatcher re-checks the target's
/// [`cluster::SiteCapacity`] and labels at deployment time and falls through
/// to next-best/cloud on rejection instead of overcommitting the site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The site's remaining capacity cannot hold the service's demand.
    Capacity {
        cluster: ClusterId,
        shortfall: cluster::CapacityShortfall,
    },
    /// The site's labels fail the service's placement requirements.
    RequirementsUnmet {
        cluster: ClusterId,
        /// The first affinity label missing or anti-affinity label present.
        label: String,
    },
}

impl AdmissionError {
    /// The rejecting site.
    pub fn cluster(&self) -> ClusterId {
        match self {
            AdmissionError::Capacity { cluster, .. }
            | AdmissionError::RequirementsUnmet { cluster, .. } => *cluster,
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Capacity { cluster, shortfall } => {
                write!(f, "cluster {} out of capacity: {shortfall}", cluster.0)
            }
            AdmissionError::RequirementsUnmet { cluster, label } => {
                write!(
                    f,
                    "cluster {} fails placement requirement `{label}`",
                    cluster.0
                )
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Detailed state of one machine (the `Probing` data is what the crash
/// observation logic needs).
#[derive(Debug, Clone)]
pub(crate) enum DeployPhase {
    Pulling,
    Creating,
    ScalingUp,
    Probing {
        deadline: SimTime,
        expected_ready: SimTime,
    },
    /// Readiness was observed at the probe; the machine completes at the
    /// detection instant (probe round trip included).
    Finalizing {
        ready_detected: SimTime,
    },
}

impl DeployPhase {
    pub(crate) fn kind(&self) -> DeployPhaseKind {
        match self {
            DeployPhase::Pulling => DeployPhaseKind::Pulling,
            DeployPhase::Creating => DeployPhaseKind::Creating,
            DeployPhase::ScalingUp => DeployPhaseKind::ScalingUp,
            DeployPhase::Probing { .. } | DeployPhase::Finalizing { .. } => {
                DeployPhaseKind::Probing
            }
        }
    }
}

/// What one [`DeployMachine::advance`] call produced.
#[derive(Debug)]
pub(crate) enum MachineOutcome {
    /// The machine moved on; nothing terminal happened.
    Progressed,
    /// A mid-deployment crash was observed and a recovery scale-up issued.
    Recovered,
    /// The port was seen open; the controller finalizes (stats, waiters).
    Ready { ready_detected: SimTime },
    /// The deployment is dead; held requests fall back to the cloud.
    Failed {
        phase: DeployPhaseKind,
        error: DeployError,
    },
}

/// A request held (buffered at its switch) until this deployment is ready —
/// on-demand deployment *with waiting* (paper Fig. 5).
#[derive(Debug, Clone)]
pub(crate) struct Waiter {
    pub key: FlowKey,
    pub sw: SwitchId,
    pub in_port: PortId,
    pub buffer_id: BufferId,
    pub decide_at: SimTime,
    pub packet: Packet,
}

/// Everything the controller hands a machine step: the target cluster's
/// backend plus the tuning knobs the old closure-based pipeline read from
/// `ControllerConfig`.
pub(crate) struct StepCtx<'a> {
    pub backend: &'a mut dyn ClusterBackend,
    pub registries: &'a RegistrySet,
    pub retries: u32,
    pub backoff: SimDuration,
    pub probe_interval: SimDuration,
    pub probe_timeout: SimDuration,
    /// Probe round trip controller ↔ cluster host (probes originate at the
    /// controller, co-located with the primary switch).
    pub probe_rtt: SimDuration,
}

/// One in-flight deployment.
pub(crate) struct DeployMachine {
    /// Creation ordinal (strictly increasing across all machines).
    pub seq: u64,
    pub cluster: ClusterId,
    pub service: ServiceId,
    pub template: Arc<ServiceTemplate>,
    pub record: DeploymentRecord,
    pub phase: DeployPhase,
    /// Virtual instant the next step is issued at. Steps run when a wakeup
    /// reaches this instant, so phase issue times are wakeup-jitter free.
    pub next_step: SimTime,
    /// Retry attempt within the current phase.
    attempt: u32,
    /// Total retried operations across phases (drained into stats at the
    /// terminal transition).
    pub retried: u64,
    /// Mid-deployment crash recoveries performed (bounded by the retry
    /// budget).
    pub recoveries: u32,
    /// Requests held on this deployment, in arrival order.
    pub waiters: Vec<Waiter>,
    /// A BEST decision piggybacked here: schedule a flow retarget once ready.
    pub wants_retarget: bool,
    /// Started by the predictor rather than a request.
    pub proactive: bool,
    /// Skip the Create phase (service objects already existed at trigger).
    skip_create: bool,
    /// The `scaled_to_zero` entry displaced when this machine started;
    /// restored if the machine fails (so the Remove phase still sees it).
    pub saved_scaled_to_zero: Option<SimTime>,
}

impl DeployMachine {
    /// Issue the one step due at `self.next_step`, mirroring the reference
    /// pipeline's per-phase behaviour exactly (issue instants, retry
    /// back-off, probe cadence, the post-increment deadline check).
    pub(crate) fn advance(&mut self, ctx: &mut StepCtx<'_>) -> MachineOutcome {
        let issued = self.next_step;
        let name = self.template.name.as_str();
        match self.phase {
            DeployPhase::Pulling => {
                match ctx.backend.pull(issued, &self.template, ctx.registries) {
                    Ok(end) => {
                        self.record.pull = Some((issued, end));
                        self.next_step = end;
                        self.attempt = 0;
                        self.phase = if self.skip_create {
                            DeployPhase::ScalingUp
                        } else {
                            DeployPhase::Creating
                        };
                        MachineOutcome::Progressed
                    }
                    Err(e) => self.retry_or_fail(e, DeployPhaseKind::Pulling, ctx),
                }
            }
            DeployPhase::Creating => {
                let result = match ctx.backend.create(issued, &self.template) {
                    Err(ClusterError::AlreadyCreated(_)) => Ok(issued),
                    other => other,
                };
                match result {
                    Ok(end) => {
                        if end > issued {
                            self.record.create = Some((issued, end));
                        }
                        self.next_step = end.max(issued);
                        self.attempt = 0;
                        self.phase = DeployPhase::ScalingUp;
                        MachineOutcome::Progressed
                    }
                    Err(e) => self.retry_or_fail(e, DeployPhaseKind::Creating, ctx),
                }
            }
            DeployPhase::ScalingUp => match ctx.backend.scale_up(issued, name, 1) {
                Ok(receipt) => {
                    self.record.scale_up =
                        Some((issued, receipt.accepted_at, receipt.expected_ready));
                    self.enter_probing(receipt, ctx);
                    MachineOutcome::Progressed
                }
                Err(e) => self.retry_or_fail(e, DeployPhaseKind::ScalingUp, ctx),
            },
            DeployPhase::Probing {
                deadline,
                expected_ready,
            } => {
                let probe_t = issued;
                if ctx.backend.is_ready(probe_t, name) {
                    let ready_detected = probe_t + ctx.probe_rtt;
                    self.phase = DeployPhase::Finalizing { ready_detected };
                    self.next_step = ready_detected;
                    return MachineOutcome::Progressed;
                }
                // Crash observation (impossible under the oracular pipeline):
                // the backend accepted the scale-up, its own readiness
                // estimate has passed, and yet no replica answers — an
                // instance died mid-deployment. Re-issue the scale-up (plain
                // Docker restarts the crashed container; self-healing
                // backends accept it as a no-op) within the retry budget.
                let status = ctx.backend.status(probe_t, name);
                if probe_t >= expected_ready
                    && status.ready_replicas == 0
                    && status.desired_replicas > 0
                    && self.recoveries < ctx.retries
                {
                    if let Ok(receipt) = ctx.backend.scale_up(probe_t, name, 1) {
                        self.recoveries += 1;
                        self.enter_probing(receipt, ctx);
                        return MachineOutcome::Recovered;
                    }
                }
                self.next_step = probe_t + ctx.probe_interval;
                if self.next_step > deadline {
                    return MachineOutcome::Failed {
                        phase: DeployPhaseKind::Probing,
                        error: DeployError::ProbeTimeout { deadline },
                    };
                }
                MachineOutcome::Progressed
            }
            DeployPhase::Finalizing { ready_detected } => {
                // The replica can die during the probe's round trip (a crash
                // event landing between the successful probe and this
                // instant). Never hand waiters a dead endpoint: fall back
                // into a recovery scale-up, or fail the deployment.
                if ctx
                    .backend
                    .replica_endpoints(ready_detected, name)
                    .is_empty()
                {
                    let status = ctx.backend.status(ready_detected, name);
                    if status.desired_replicas > 0 && self.recoveries < ctx.retries {
                        if let Ok(receipt) = ctx.backend.scale_up(ready_detected, name, 1) {
                            self.recoveries += 1;
                            self.enter_probing(receipt, ctx);
                            return MachineOutcome::Recovered;
                        }
                    }
                    return MachineOutcome::Failed {
                        phase: DeployPhaseKind::Probing,
                        error: DeployError::ProbeTimeout {
                            deadline: ready_detected,
                        },
                    };
                }
                MachineOutcome::Ready { ready_detected }
            }
        }
    }

    /// A scale-up receipt starts (or restarts) the probe loop: probes every
    /// `probe_interval` from the accept instant, a fresh timeout window.
    pub(crate) fn enter_probing(&mut self, receipt: cluster::ScaleReceipt, ctx: &StepCtx<'_>) {
        self.phase = DeployPhase::Probing {
            deadline: receipt.accepted_at + ctx.probe_timeout,
            expected_ready: receipt.expected_ready,
        };
        self.next_step = receipt.accepted_at;
        self.attempt = 0;
    }

    fn retry_or_fail(
        &mut self,
        error: ClusterError,
        phase: DeployPhaseKind,
        ctx: &StepCtx<'_>,
    ) -> MachineOutcome {
        if self.attempt < ctx.retries {
            self.attempt += 1;
            self.retried += 1;
            self.next_step += ctx.backoff;
            MachineOutcome::Progressed
        } else {
            MachineOutcome::Failed {
                phase,
                error: DeployError::Cluster(error),
            }
        }
    }
}

/// The set of in-flight deployment machines plus the bookkeeping the event
/// loop needs: the next due step and which machine ordinals completed
/// successfully (for attributing `triggered_deployment` to requests).
#[derive(Default)]
pub(crate) struct Dispatcher {
    pub machines: Vec<DeployMachine>,
    next_seq: u64,
    /// Seqs of machines that reached `Ready`, ascending.
    completed: Vec<u64>,
}

impl Dispatcher {
    /// Ordinal the next machine will get — machines started so far.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn find(&self, cluster: ClusterId, service: ServiceId) -> Option<usize> {
        self.machines
            .iter()
            .position(|m| m.cluster == cluster && m.service == service)
    }

    pub fn any_for_service(&self, service: ServiceId) -> bool {
        self.machines.iter().any(|m| m.service == service)
    }

    /// Start a machine at `now`; phases whose issue instants are already due
    /// run when the controller pumps the machines (same call stack), so the
    /// backend sees the same call order as the synchronous pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        now: SimTime,
        cluster: ClusterId,
        service: ServiceId,
        template: Arc<ServiceTemplate>,
        record: DeploymentRecord,
        images_cached: bool,
        created: bool,
        saved_scaled_to_zero: Option<SimTime>,
    ) -> &mut DeployMachine {
        let seq = self.next_seq;
        self.next_seq += 1;
        let phase = if !images_cached {
            DeployPhase::Pulling
        } else if !created {
            DeployPhase::Creating
        } else {
            DeployPhase::ScalingUp
        };
        self.machines.push(DeployMachine {
            seq,
            cluster,
            service,
            template,
            record,
            phase,
            next_step: now,
            attempt: 0,
            retried: 0,
            recoveries: 0,
            waiters: Vec::new(),
            wants_retarget: false,
            proactive: false,
            skip_create: created,
            saved_scaled_to_zero,
        });
        self.machines.last_mut().expect("just pushed")
    }

    /// Index of the due machine with the smallest `(next_step, seq)`, if any
    /// step is due at or before `now`.
    pub fn due_index(&self, now: SimTime) -> Option<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.next_step <= now)
            .min_by_key(|(_, m)| (m.next_step, m.seq))
            .map(|(i, _)| i)
    }

    /// Earliest pending step across all machines.
    pub fn next_step_at(&self) -> Option<SimTime> {
        self.machines.iter().map(|m| m.next_step).min()
    }

    pub fn remove(&mut self, index: usize) -> DeployMachine {
        self.machines.remove(index)
    }

    pub fn record_completed(&mut self, seq: u64) {
        match self.completed.binary_search(&seq) {
            Ok(_) => {}
            Err(pos) => self.completed.insert(pos, seq),
        }
    }

    /// Did any machine with ordinal in `[lo, hi)` complete successfully?
    pub fn completed_in(&self, lo: u64, hi: u64) -> bool {
        let start = self.completed.partition_point(|&s| s < lo);
        self.completed.get(start).is_some_and(|&s| s < hi)
    }
}

pub mod reference {
    //! The historical **synchronous** deployment pipeline, retained verbatim
    //! as the equivalence oracle: it precomputes the readiness instant in one
    //! call the moment the triggering packet arrives (temporal-database
    //! backends make this legal — mutating calls take an `at` instant and
    //! return completion instants). The lockstep property test drives a
    //! reference-engine controller and a stepped-engine controller through
    //! identical inputs and asserts identical outputs, stats and deployment
    //! records. See DESIGN.md §5e.
    //!
    //! Known (intentional) limitation preserved here: the pending map is the
    //! pre-dispatcher piggyback bookkeeping, including its historical leak —
    //! entries whose readiness instant passed are never evicted. The stepped
    //! engine fixes this structurally (machines are removed at the terminal
    //! transition); the reference keeps the old behaviour so equivalence is
    //! proved against what actually shipped.

    use std::collections::HashMap;

    use cluster::ClusterError;
    use simcore::{SimDuration, SimTime};

    use super::StepCtx;
    use crate::catalog::ServiceId;
    use crate::controller::DeploymentRecord;
    use crate::scheduler::ClusterId;

    /// Piggyback state of the synchronous pipeline: readiness instants of
    /// deployments already run.
    #[derive(Default)]
    pub(crate) struct ReferencePipeline {
        pub pending: HashMap<(ClusterId, ServiceId), SimTime>,
    }

    /// Result of one synchronous pipeline run.
    pub(crate) enum Outcome {
        /// The service was already ready at the call instant.
        AlreadyReady,
        /// The pipeline completed; the record carries all phase instants.
        Ready {
            record: Box<DeploymentRecord>,
            retried: u64,
        },
        /// A phase exhausted retries or the probe window closed.
        Failed { retried: u64 },
    }

    /// Run Pull → Create → Scale-Up → poll-port in one shot (the pre-state-
    /// machine `ensure_deployed` body, byte-for-byte semantics).
    pub(crate) fn deploy(
        now: SimTime,
        template: &cluster::ServiceTemplate,
        mut record: DeploymentRecord,
        ctx: &mut StepCtx<'_>,
    ) -> Outcome {
        let name = template.name.as_str();
        let backend = &mut *ctx.backend;
        let registries = ctx.registries;
        let retries = ctx.retries;
        let backoff = ctx.backoff;

        let status = backend.status(now, name);
        if status.is_ready() {
            return Outcome::AlreadyReady;
        }
        let images_cached = backend.has_images(template);
        let mut t = now;
        let mut retried: u64 = 0;

        // Phase 1: Pull (skipped when cached).
        if !images_cached {
            let Some((issued, end)) = with_retries(&mut t, retries, backoff, &mut retried, |at| {
                backend.pull(at, template, registries)
            }) else {
                return Outcome::Failed { retried };
            };
            record.pull = Some((issued, end));
            t = end;
        }

        // Phase 2: Create (skipped when the service objects exist).
        if !status.created {
            match with_retries(&mut t, retries, backoff, &mut retried, |at| {
                match backend.create(at, template) {
                    Err(ClusterError::AlreadyCreated(_)) => Ok(at),
                    other => other,
                }
            }) {
                Some((issued, end)) => {
                    if end > issued {
                        record.create = Some((issued, end));
                    }
                    t = end.max(t);
                }
                None => return Outcome::Failed { retried },
            }
        }

        // Phase 3: Scale Up.
        let Some((issued, receipt)) = with_retries(&mut t, retries, backoff, &mut retried, |at| {
            backend.scale_up(at, name, 1)
        }) else {
            return Outcome::Failed { retried };
        };
        record.scale_up = Some((issued, receipt.accepted_at, receipt.expected_ready));

        // Port polling: probe every `probe_interval` from the moment the
        // scale-up API returned, plus the probe's own round trip to the host.
        let mut probe_t = receipt.accepted_at;
        let deadline = receipt.accepted_at + ctx.probe_timeout;
        let ready_detected = loop {
            if backend.is_ready(probe_t, name) {
                break Some(probe_t + ctx.probe_rtt);
            }
            probe_t += ctx.probe_interval;
            if probe_t > deadline {
                break None;
            }
        };
        match ready_detected {
            Some(ready_detected) => {
                record.ready_detected = ready_detected;
                Outcome::Ready {
                    record: Box::new(record),
                    retried,
                }
            }
            None => Outcome::Failed { retried },
        }
    }

    /// Retry a phase on transient errors with back-off; returns the
    /// successful result and the (possibly delayed) issue time.
    pub(crate) fn with_retries<R>(
        t: &mut SimTime,
        retries: u32,
        backoff: SimDuration,
        retried: &mut u64,
        mut op: impl FnMut(SimTime) -> Result<R, ClusterError>,
    ) -> Option<(SimTime, R)> {
        let mut attempt = 0;
        loop {
            let issued = *t;
            match op(issued) {
                Ok(r) => return Some((issued, r)),
                Err(_) if attempt < retries => {
                    attempt += 1;
                    *retried += 1;
                    *t = issued + backoff;
                }
                Err(_) => return None,
            }
        }
    }
}
