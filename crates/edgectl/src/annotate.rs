//! Automated annotation of service definition files (paper §V).
//!
//! Developers register an edge service with a *Kubernetes Deployment*-style
//! YAML file in which "the only mandatory data is the name of the image". The
//! controller then annotates it:
//!
//! 1. sets a **unique worldwide name** for the service,
//! 2. adds the `matchLabels` Kubernetes requires,
//! 3. adds an **`edge.service` label** so edge services can be addressed and
//!    queried distinctly,
//! 4. sets **`replicas: 0`** ("scale to zero") by default,
//! 5. writes the configured **Local Scheduler** into `schedulerName`,
//! 6. **generates a `Service` definition** (unique name, labels, exposed
//!    port, target port, TCP) unless the developer already included one.
//!
//! The same annotated definition drives both the Docker and the Kubernetes
//! backend; for Docker only a subset of the fields is interpreted, exactly as
//! in the paper's prototype. The output of this module is both the annotated
//! YAML documents and the backend-neutral [`ServiceTemplate`].

use cluster::{ContainerTemplate, DeploymentRequirements, ServiceTemplate};
use containers::ImageRef;
use simcore::DurationDist;
use yamlite::Yaml;

/// Label key the controller adds to address edge services distinctly.
pub const EDGE_SERVICE_LABEL: &str = "edge.service";
/// Optional annotation carrying the service's measured app-init median (ms);
/// used by the simulation to model readiness.
pub const APP_INIT_ANNOTATION: &str = "edge.service/app-init-ms";
/// Optional annotation: comma-separated site labels the service *requires*
/// (affinity); compiled into [`DeploymentRequirements::label_match_all`].
pub const AFFINITY_ANNOTATION: &str = "edge.service/affinity";
/// Optional annotation: comma-separated site labels the service *refuses*
/// (anti-affinity); compiled into [`DeploymentRequirements::label_match_none`].
pub const ANTI_AFFINITY_ANNOTATION: &str = "edge.service/anti-affinity";

/// Controller-side inputs to annotation.
#[derive(Debug, Clone)]
pub struct AnnotateOptions {
    /// The unique worldwide service name the platform assigns.
    pub service_name: String,
    /// The port the registered (cloud) service exposes.
    pub exposed_port: u16,
    /// Local Scheduler configured for the target cluster, if any
    /// (written into `spec.template.spec.schedulerName`).
    pub local_scheduler: Option<String>,
    /// Initial replica count; the paper's default is 0 ("scale to zero").
    pub replicas: i64,
}

impl AnnotateOptions {
    pub fn new(service_name: impl Into<String>, exposed_port: u16) -> AnnotateOptions {
        AnnotateOptions {
            service_name: service_name.into(),
            exposed_port,
            local_scheduler: None,
            replicas: 0,
        }
    }
}

/// The annotation result.
#[derive(Debug, Clone)]
pub struct AnnotatedService {
    /// The annotated Deployment document.
    pub deployment: Yaml,
    /// The (possibly generated) Service document.
    pub service: Yaml,
    /// Backend-neutral template compiled from the definition.
    pub template: ServiceTemplate,
}

/// Annotation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotateError {
    /// No container image could be found in the definition.
    MissingImage,
    /// A structural element was present but of the wrong shape.
    BadStructure(String),
    /// A resource quantity (cpu/memory) failed to parse.
    BadQuantity(String),
}

impl std::fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotateError::MissingImage => f.write_str("service definition contains no image"),
            AnnotateError::BadStructure(s) => write!(f, "bad structure: {s}"),
            AnnotateError::BadQuantity(s) => write!(f, "bad quantity: {s}"),
        }
    }
}
impl std::error::Error for AnnotateError {}

/// Annotate a multi-document service definition file (`---`-separated): the
/// Deployment is annotated as in [`annotate`]; if the developer already
/// included a `Service` document, it is kept (with the unique name and
/// `edge.service` selector enforced) instead of generating one — paper §V:
/// "unless the developer already included one in the YAML file".
pub fn annotate_documents(
    docs: &[Yaml],
    opts: &AnnotateOptions,
) -> Result<AnnotatedService, AnnotateError> {
    let mut deployment_doc = None;
    let mut service_doc = None;
    for doc in docs {
        match doc.get("kind").and_then(Yaml::as_str) {
            Some("Service") => service_doc = Some(doc.clone()),
            _ => deployment_doc = Some(doc.clone()),
        }
    }
    let deployment_doc = deployment_doc.ok_or(AnnotateError::MissingImage)?;
    let mut out = annotate(&deployment_doc, opts)?;
    if let Some(mut svc) = service_doc {
        // Enforce the platform-assigned identity on the user's Service.
        svc.set_path("metadata.name", Yaml::str(opts.service_name.clone()));
        let labels = ensure_map_at(&mut svc, "metadata.labels")?;
        labels.insert(EDGE_SERVICE_LABEL, Yaml::str(opts.service_name.clone()));
        let selector = ensure_map_at(&mut svc, "spec.selector")?;
        selector.insert(EDGE_SERVICE_LABEL, Yaml::str(opts.service_name.clone()));
        out.service = svc;
    }
    Ok(out)
}

/// Annotate a service definition (see module docs). `doc` may be
///
/// * a full or partial Deployment (`spec.template.spec.containers[...]`),
/// * or the minimal form: a mapping with just `image: <ref>`.
///
/// ```
/// use edgectl::{annotate, AnnotateOptions};
///
/// let doc = yamlite::parse("image: nginx:1.23.2").unwrap();
/// let out = annotate(&doc, &AnnotateOptions::new("edge-web-001", 80)).unwrap();
/// assert_eq!(out.deployment.at("spec.replicas"), Some(&yamlite::Yaml::Int(0)));
/// assert_eq!(out.service.get("kind").and_then(yamlite::Yaml::as_str), Some("Service"));
/// assert_eq!(out.template.name, "edge-web-001");
/// ```
pub fn annotate(doc: &Yaml, opts: &AnnotateOptions) -> Result<AnnotatedService, AnnotateError> {
    let mut deployment = normalize_deployment(doc, opts)?;

    // (1) unique worldwide name
    deployment.set_path("metadata.name", Yaml::str(opts.service_name.clone()));
    // (2)+(3) labels and matchLabels, including edge.service (a literal key
    // containing a dot — inserted directly, not via the dotted-path helper)
    for path in [
        "metadata.labels",
        "spec.selector.matchLabels",
        "spec.template.metadata.labels",
    ] {
        let labels = ensure_map_at(&mut deployment, path)?;
        labels.insert("app", Yaml::str(opts.service_name.clone()));
        labels.insert(EDGE_SERVICE_LABEL, Yaml::str(opts.service_name.clone()));
    }
    // (4) scale to zero
    deployment.set_path("spec.replicas", Yaml::Int(opts.replicas));
    // (5) local scheduler
    if let Some(ls) = &opts.local_scheduler {
        deployment.set_path("spec.template.spec.schedulerName", Yaml::str(ls.clone()));
    }

    let template = build_template(&deployment, opts)?;
    let service = generate_service(&template, opts)?;

    Ok(AnnotatedService {
        deployment,
        service,
        template,
    })
}

/// Navigate to a mapping at a dotted path of *simple* segments, creating
/// intermediate maps as needed. A scalar already sitting anywhere on the path
/// (e.g. `metadata: 3`) is a structural error in the user's document, not a
/// panic: it is reported via [`AnnotateError::BadStructure`] so malformed
/// definitions lint instead of crash.
fn ensure_map_at<'a>(doc: &'a mut Yaml, path: &str) -> Result<&'a mut Yaml, AnnotateError> {
    let mut cur = doc;
    let mut walked = String::new();
    for seg in path.split('.') {
        if !matches!(cur, Yaml::Map(_)) {
            return Err(AnnotateError::BadStructure(format!(
                "`{walked}` must be a mapping, got {}",
                cur.type_name()
            )));
        }
        if !walked.is_empty() {
            walked.push('.');
        }
        walked.push_str(seg);
        match cur.get(seg) {
            // `key:` with no value reads as null; treat it as an empty map.
            None | Some(Yaml::Null) => cur.insert(seg, Yaml::map()),
            Some(Yaml::Map(_)) => {}
            Some(other) => {
                return Err(AnnotateError::BadStructure(format!(
                    "`{walked}` must be a mapping, got {}",
                    other.type_name()
                )))
            }
        }
        cur = cur
            .get_mut(seg)
            .expect("segment exists: just checked or inserted");
    }
    Ok(cur)
}

/// Bring the user document into Deployment shape, synthesizing the scaffold
/// around a bare `image:` if needed.
fn normalize_deployment(doc: &Yaml, opts: &AnnotateOptions) -> Result<Yaml, AnnotateError> {
    let mut out = match doc {
        Yaml::Map(_) => doc.clone(),
        Yaml::Null => Yaml::map(),
        other => {
            return Err(AnnotateError::BadStructure(format!(
                "definition must be a mapping, got {}",
                other.type_name()
            )))
        }
    };
    if out.get("apiVersion").is_none() {
        out.insert("apiVersion", Yaml::str("apps/v1"));
    }
    if out.get("kind").is_none() {
        out.insert("kind", Yaml::str("Deployment"));
    }

    // Minimal form: `image: nginx:1.23.2` at top level.
    if let Some(img) = out.get("image").and_then(Yaml::as_str).map(str::to_string) {
        out.remove("image");
        let mut container = Yaml::map();
        container.insert("name", Yaml::str(opts.service_name.clone()));
        container.insert("image", Yaml::str(img));
        out.set_path("spec.template.spec.containers", Yaml::Seq(vec![container]));
    }

    let containers = out.at("spec.template.spec.containers");
    match containers {
        Some(Yaml::Seq(seq)) if !seq.is_empty() => {}
        Some(other) => {
            return Err(AnnotateError::BadStructure(format!(
                "spec.template.spec.containers must be a non-empty sequence, got {}",
                other.type_name()
            )))
        }
        None => return Err(AnnotateError::MissingImage),
    }

    // Give unnamed containers deterministic names derived from their image.
    let n = out
        .at("spec.template.spec.containers")
        .and_then(Yaml::as_seq)
        .ok_or_else(|| {
            AnnotateError::BadStructure("spec.template.spec.containers is not a sequence".into())
        })?
        .len();
    for i in 0..n {
        let base = format!("spec.template.spec.containers.{i}");
        let image = out
            .at(&format!("{base}.image"))
            .and_then(Yaml::as_str)
            .ok_or(AnnotateError::MissingImage)?
            .to_string();
        if out.at(&format!("{base}.name")).is_none() {
            let short = image
                .rsplit('/')
                .next()
                .unwrap_or(&image)
                .split(':')
                .next()
                .unwrap_or("container")
                .to_string();
            out.set_path(&format!("{base}.name"), Yaml::str(format!("{short}-{i}")));
        }
    }
    Ok(out)
}

/// Compile the deployment into the backend-neutral template.
fn build_template(
    deployment: &Yaml,
    opts: &AnnotateOptions,
) -> Result<ServiceTemplate, AnnotateError> {
    let containers_yaml = deployment
        .at("spec.template.spec.containers")
        .and_then(Yaml::as_seq)
        .ok_or_else(|| {
            AnnotateError::BadStructure("spec.template.spec.containers is not a sequence".into())
        })?;

    let annotations = deployment.at("metadata.annotations");
    let app_init_ms = annotations
        .and_then(|a| a.get(APP_INIT_ANNOTATION))
        .and_then(Yaml::as_f64);
    let requirements = DeploymentRequirements {
        label_match_all: parse_label_list(annotations, AFFINITY_ANNOTATION)?,
        label_match_none: parse_label_list(annotations, ANTI_AFFINITY_ANNOTATION)?,
    };

    let mut containers = Vec::with_capacity(containers_yaml.len());
    for c in containers_yaml {
        let image = c
            .get("image")
            .and_then(Yaml::as_str)
            .ok_or(AnnotateError::MissingImage)?;
        let name = c
            .get("name")
            .and_then(Yaml::as_str)
            .unwrap_or("container")
            .to_string();
        let cpu = match c.at("resources.requests.cpu") {
            Some(v) => parse_cpu_millis(v)?,
            None => 250,
        };
        let mem = match c.at("resources.requests.memory") {
            Some(v) => parse_mem_bytes(v)?,
            None => 128 << 20,
        };
        containers.push(ContainerTemplate {
            name,
            image: ImageRef::new(image),
            app_init: match app_init_ms {
                Some(ms) if ms > 0.0 => DurationDist::log_normal_ms(ms, 0.2),
                _ => DurationDist::log_normal_ms(100.0, 0.2),
            },
            cpu_millis: cpu,
            mem_bytes: mem,
        });
    }

    // Target port: the first container's first containerPort, else the
    // exposed port.
    let port = deployment
        .at("spec.template.spec.containers.0.ports.0.containerPort")
        .and_then(Yaml::as_i64)
        .map(|p| p as u16)
        .unwrap_or(opts.exposed_port);

    Ok(ServiceTemplate {
        name: opts.service_name.clone(),
        containers,
        port,
        scheduler_name: opts.local_scheduler.clone(),
        requirements,
    })
}

/// Read a comma-separated label list annotation; absent → empty. A non-string
/// value is a structural error (lint, don't crash).
fn parse_label_list(annotations: Option<&Yaml>, key: &str) -> Result<Vec<String>, AnnotateError> {
    match annotations.and_then(|a| a.get(key)) {
        None | Some(Yaml::Null) => Ok(Vec::new()),
        Some(Yaml::Str(s)) => Ok(s
            .split(',')
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()),
        Some(other) => Err(AnnotateError::BadStructure(format!(
            "`{key}` must be a comma-separated string, got {}",
            other.type_name()
        ))),
    }
}

/// Build the Kubernetes `Service` document the paper generates automatically.
fn generate_service(
    template: &ServiceTemplate,
    opts: &AnnotateOptions,
) -> Result<Yaml, AnnotateError> {
    let mut svc = Yaml::map();
    svc.insert("apiVersion", Yaml::str("v1"));
    svc.insert("kind", Yaml::str("Service"));
    svc.set_path("metadata.name", Yaml::str(opts.service_name.clone()));
    let labels = ensure_map_at(&mut svc, "metadata.labels")?;
    labels.insert("app", Yaml::str(opts.service_name.clone()));
    labels.insert(EDGE_SERVICE_LABEL, Yaml::str(opts.service_name.clone()));
    let selector = ensure_map_at(&mut svc, "spec.selector")?;
    selector.insert(EDGE_SERVICE_LABEL, Yaml::str(opts.service_name.clone()));
    let mut port = Yaml::map();
    port.insert("port", Yaml::Int(opts.exposed_port as i64));
    port.insert("targetPort", Yaml::Int(template.port as i64));
    port.insert("protocol", Yaml::str("TCP"));
    svc.set_path("spec.ports", Yaml::Seq(vec![port]));
    Ok(svc)
}

/// Parse a Kubernetes CPU quantity: `"250m"` → 250 milli-cores, `1` / `"2"` →
/// whole cores.
fn parse_cpu_millis(v: &Yaml) -> Result<u32, AnnotateError> {
    match v {
        Yaml::Int(cores) if *cores >= 0 => Ok((*cores as u32) * 1000),
        Yaml::Float(cores) if *cores >= 0.0 => Ok((cores * 1000.0).round() as u32),
        Yaml::Str(s) => {
            if let Some(m) = s.strip_suffix('m') {
                m.parse::<u32>()
                    .map_err(|_| AnnotateError::BadQuantity(s.clone()))
            } else {
                s.parse::<f64>()
                    .map(|c| (c * 1000.0).round() as u32)
                    .map_err(|_| AnnotateError::BadQuantity(s.clone()))
            }
        }
        other => Err(AnnotateError::BadQuantity(format!("{other:?}"))),
    }
}

/// Parse a Kubernetes memory quantity: `"128Mi"`, `"1Gi"`, `"512Ki"`, or raw
/// bytes.
fn parse_mem_bytes(v: &Yaml) -> Result<u64, AnnotateError> {
    match v {
        Yaml::Int(bytes) if *bytes >= 0 => Ok(*bytes as u64),
        Yaml::Str(s) => {
            let (num, mult) = if let Some(n) = s.strip_suffix("Gi") {
                (n, 1u64 << 30)
            } else if let Some(n) = s.strip_suffix("Mi") {
                (n, 1 << 20)
            } else if let Some(n) = s.strip_suffix("Ki") {
                (n, 1 << 10)
            } else {
                (s.as_str(), 1)
            };
            num.trim()
                .parse::<u64>()
                .map(|n| n * mult)
                .map_err(|_| AnnotateError::BadQuantity(s.clone()))
        }
        other => Err(AnnotateError::BadQuantity(format!("{other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse;

    fn opts() -> AnnotateOptions {
        AnnotateOptions::new("edge-nginx-web-001", 80)
    }

    #[test]
    fn minimal_image_only_definition() {
        let doc = parse("image: nginx:1.23.2\n").unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        assert_eq!(
            out.deployment.at("metadata.name").and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
        assert_eq!(
            out.deployment
                .at("spec.template.spec.containers.0.image")
                .and_then(Yaml::as_str),
            Some("nginx:1.23.2")
        );
        assert_eq!(out.template.containers.len(), 1);
        assert_eq!(out.template.port, 80);
    }

    #[test]
    fn sets_unique_name_and_all_labels() {
        let doc = parse("image: nginx:1.23.2\n").unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        for path in [
            "metadata.labels",
            "spec.selector.matchLabels",
            "spec.template.metadata.labels",
        ] {
            let labels = out.deployment.at(path).expect(path);
            assert_eq!(
                labels.get("app").and_then(Yaml::as_str),
                Some("edge-nginx-web-001")
            );
            assert_eq!(
                labels.get(EDGE_SERVICE_LABEL).and_then(Yaml::as_str),
                Some("edge-nginx-web-001"),
                "edge.service label at {path}"
            );
        }
    }

    #[test]
    fn scale_to_zero_by_default() {
        let doc = parse("image: nginx:1.23.2\nspec:\n  replicas: 5\n").unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        assert_eq!(out.deployment.at("spec.replicas"), Some(&Yaml::Int(0)));
    }

    #[test]
    fn local_scheduler_written_when_configured() {
        let doc = parse("image: nginx:1.23.2\n").unwrap();
        let mut o = opts();
        o.local_scheduler = Some("edge-matching-scheduler".into());
        let out = annotate(&doc, &o).unwrap();
        assert_eq!(
            out.deployment
                .at("spec.template.spec.schedulerName")
                .and_then(Yaml::as_str),
            Some("edge-matching-scheduler")
        );
        // absent when not configured
        let out2 = annotate(&doc, &opts()).unwrap();
        assert!(out2
            .deployment
            .at("spec.template.spec.schedulerName")
            .is_none());
    }

    #[test]
    fn generated_service_has_ports_and_selector() {
        let doc = parse(
            "spec:\n  template:\n    spec:\n      containers:\n        - image: nginx:1.23.2\n          ports:\n            - containerPort: 8080\n",
        )
        .unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        assert_eq!(
            out.service.get("kind").and_then(Yaml::as_str),
            Some("Service")
        );
        assert_eq!(out.service.at("spec.ports.0.port"), Some(&Yaml::Int(80)));
        assert_eq!(
            out.service.at("spec.ports.0.targetPort"),
            Some(&Yaml::Int(8080))
        );
        assert_eq!(
            out.service
                .at("spec.ports.0.protocol")
                .and_then(Yaml::as_str),
            Some("TCP")
        );
        assert_eq!(
            out.service
                .at("spec.selector")
                .and_then(|s| s.get(EDGE_SERVICE_LABEL))
                .and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
        assert_eq!(out.template.port, 8080);
    }

    #[test]
    fn full_deployment_preserved_and_annotated() {
        let src = r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: will-be-replaced
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          resources:
            requests:
              cpu: 500m
              memory: 256Mi
          volumeMounts:
            - mountPath: /usr/share/nginx/html
              name: html
      volumes:
        - name: html
          hostPath:
            path: /srv/html
"#;
        let doc = parse(src).unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        // user content preserved
        assert_eq!(
            out.deployment
                .at("spec.template.spec.volumes.0.hostPath.path")
                .and_then(Yaml::as_str),
            Some("/srv/html")
        );
        // name replaced with the unique one
        assert_eq!(
            out.deployment.at("metadata.name").and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
        // resources parsed into the template
        assert_eq!(out.template.containers[0].cpu_millis, 500);
        assert_eq!(out.template.containers[0].mem_bytes, 256 << 20);
        assert_eq!(out.template.containers[0].name, "web");
    }

    #[test]
    fn two_container_definition() {
        let src = r#"
spec:
  template:
    spec:
      containers:
        - image: nginx:1.23.2
        - image: josefhammer/env-writer-py
"#;
        let out = annotate(&parse(src).unwrap(), &opts()).unwrap();
        assert_eq!(out.template.containers.len(), 2);
        // auto-named from their images
        assert_eq!(out.template.containers[0].name, "nginx-0");
        assert_eq!(out.template.containers[1].name, "env-writer-py-1");
    }

    #[test]
    fn app_init_annotation_respected() {
        let src = format!(
            "image: slow/app:1\nmetadata:\n  annotations:\n    {APP_INIT_ANNOTATION}: 2300\n"
        );
        let out = annotate(&parse(&src).unwrap(), &opts()).unwrap();
        let mean = out.template.containers[0].app_init.0.mean().unwrap();
        assert!(mean > 2000.0, "annotation median 2300 ms, mean={mean}");
    }

    #[test]
    fn affinity_annotations_compile_into_requirements() {
        let src = format!(
            "image: nginx:1.23.2\nmetadata:\n  annotations:\n    {AFFINITY_ANNOTATION}: \"gpu, zone-a\"\n    {ANTI_AFFINITY_ANNOTATION}: far-edge\n"
        );
        let out = annotate(&parse(&src).unwrap(), &opts()).unwrap();
        assert_eq!(
            out.template.requirements.label_match_all,
            vec!["gpu", "zone-a"]
        );
        assert_eq!(out.template.requirements.label_match_none, vec!["far-edge"]);
        // absent annotations → no constraints
        let plain = annotate(&parse("image: nginx:1.23.2\n").unwrap(), &opts()).unwrap();
        assert!(plain.template.requirements.is_empty());
        // a non-string value lints
        let bad = format!("image: nginx:1.23.2\nmetadata:\n  annotations:\n    {AFFINITY_ANNOTATION}:\n      - gpu\n");
        assert!(matches!(
            annotate(&parse(&bad).unwrap(), &opts()).unwrap_err(),
            AnnotateError::BadStructure(_)
        ));
    }

    #[test]
    fn missing_image_rejected() {
        assert_eq!(
            annotate(&parse("").unwrap(), &opts()).unwrap_err(),
            AnnotateError::MissingImage
        );
        let doc = parse("spec:\n  template:\n    spec:\n      containers: []\n").unwrap();
        assert!(matches!(
            annotate(&doc, &opts()).unwrap_err(),
            AnnotateError::BadStructure(_)
        ));
    }

    #[test]
    fn scalar_document_rejected() {
        assert!(matches!(
            annotate(&Yaml::Int(3), &opts()).unwrap_err(),
            AnnotateError::BadStructure(_)
        ));
    }

    #[test]
    fn scalar_on_label_path_errors_instead_of_panicking() {
        // `metadata: 3` used to panic inside ensure_map_at; it must lint.
        let doc = parse("image: nginx:1.23.2\nmetadata: 3\n").unwrap();
        let err = annotate(&doc, &opts()).unwrap_err();
        match err {
            AnnotateError::BadStructure(msg) => {
                assert!(msg.contains("metadata"), "{msg}");
                assert!(msg.contains("int"), "{msg}");
            }
            other => panic!("expected BadStructure, got {other:?}"),
        }
        // a scalar one level deeper (the final path element) as well
        let doc = parse("image: nginx:1.23.2\nmetadata:\n  labels: oops\n").unwrap();
        assert!(matches!(
            annotate(&doc, &opts()).unwrap_err(),
            AnnotateError::BadStructure(_)
        ));
    }

    #[test]
    fn null_intermediate_becomes_map() {
        // `metadata:` with no value is null, not an error — it reads as an
        // empty mapping like kubectl treats it.
        let doc = parse("image: nginx:1.23.2\nmetadata:\n").unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        assert_eq!(
            out.deployment
                .at("metadata.labels")
                .and_then(|l| l.get(EDGE_SERVICE_LABEL))
                .and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
    }

    #[test]
    fn scalar_metadata_in_user_service_errors_instead_of_panicking() {
        let docs = yamlite::parse_all("image: nginx:1.23.2\n---\nkind: Service\nmetadata: nope\n")
            .unwrap();
        assert!(matches!(
            annotate_documents(&docs, &opts()).unwrap_err(),
            AnnotateError::BadStructure(_)
        ));
    }

    #[test]
    fn quantities_parse() {
        assert_eq!(parse_cpu_millis(&Yaml::str("250m")).unwrap(), 250);
        assert_eq!(parse_cpu_millis(&Yaml::str("2")).unwrap(), 2000);
        assert_eq!(parse_cpu_millis(&Yaml::Int(1)).unwrap(), 1000);
        assert_eq!(parse_cpu_millis(&Yaml::Float(0.5)).unwrap(), 500);
        assert!(parse_cpu_millis(&Yaml::str("abc")).is_err());

        assert_eq!(parse_mem_bytes(&Yaml::str("128Mi")).unwrap(), 128 << 20);
        assert_eq!(parse_mem_bytes(&Yaml::str("2Gi")).unwrap(), 2 << 30);
        assert_eq!(parse_mem_bytes(&Yaml::str("512Ki")).unwrap(), 512 << 10);
        assert_eq!(parse_mem_bytes(&Yaml::Int(4096)).unwrap(), 4096);
        assert!(parse_mem_bytes(&Yaml::str("lots")).is_err());
    }

    #[test]
    fn multi_document_keeps_user_service() {
        let docs = yamlite::parse_all(
            "image: nginx:1.23.2\n---\nkind: Service\nspec:\n  ports:\n    - port: 8443\n      targetPort: 443\n",
        )
        .unwrap();
        let out = annotate_documents(&docs, &opts()).unwrap();
        // the user's port mapping survives…
        assert_eq!(out.service.at("spec.ports.0.port"), Some(&Yaml::Int(8443)));
        // …but identity is enforced
        assert_eq!(
            out.service.at("metadata.name").and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
        assert_eq!(
            out.service
                .at("spec.selector")
                .and_then(|s| s.get(EDGE_SERVICE_LABEL))
                .and_then(Yaml::as_str),
            Some("edge-nginx-web-001")
        );
    }

    #[test]
    fn multi_document_without_service_generates_one() {
        let docs = yamlite::parse_all("image: nginx:1.23.2\n").unwrap();
        let out = annotate_documents(&docs, &opts()).unwrap();
        assert_eq!(
            out.service.get("kind").and_then(Yaml::as_str),
            Some("Service")
        );
        assert_eq!(out.service.at("spec.ports.0.port"), Some(&Yaml::Int(80)));
    }

    #[test]
    fn multi_document_service_only_is_an_error() {
        let docs = yamlite::parse_all("kind: Service\n").unwrap();
        assert_eq!(
            annotate_documents(&docs, &opts()).unwrap_err(),
            AnnotateError::MissingImage
        );
    }

    #[test]
    fn annotated_yaml_roundtrips_through_emitter() {
        let doc = parse("image: nginx:1.23.2\n").unwrap();
        let out = annotate(&doc, &opts()).unwrap();
        let dep_text = yamlite::to_string(&out.deployment);
        let svc_text = yamlite::to_string(&out.service);
        assert_eq!(parse(&dep_text).unwrap(), out.deployment);
        assert_eq!(parse(&svc_text).unwrap(), out.service);
    }
}
