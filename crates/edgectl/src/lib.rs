//! # edgectl — the transparent-edge SDN controller (the paper's contribution)
//!
//! This crate is the system the paper presents: an SDN controller that makes
//! edge computing *transparent* (clients address cloud IPs; the network
//! redirects them to nearby edge instances) and — the new part — deploys
//! containerized services **on demand** when a request arrives for a service
//! with no running instance nearby.
//!
//! Components, matching the paper's architecture (Figs. 6–7):
//!
//! * [`catalog`] — the registry of *registered services*: cloud `(IP, port)` →
//!   service definition,
//! * [`flowmemory`] — memorized redirect flows with idle timeouts; lets switch
//!   table timeouts stay low and drives idle-instance scale-down (paper §V),
//! * [`scheduler`] — the pluggable **Global Scheduler** (picks FAST and BEST
//!   clusters) and **Local Scheduler** (picks an instance within a cluster),
//!   with the policies evaluated in this reproduction,
//! * [`annotate`](mod@annotate) — the automated annotation of Kubernetes-style service
//!   definition files (unique name, matchLabels, `edge.service` label,
//!   `replicas: 0`, `schedulerName`, generated `Service`),
//! * [`dispatcher`] — the per-deployment state machine (`Pulling → Creating →
//!   ScalingUp → Probing → Ready | Failed`) advanced by discrete wakeups, plus
//!   the retained synchronous pipeline as an equivalence oracle
//!   ([`dispatcher::reference`]),
//! * [`controller`] — the controller event loop: PacketIn handling, on-demand
//!   deployment *with* and *without* waiting via the dispatcher, flow
//!   installation and idle scale-down, all scheduled through one
//!   `next_wakeup`/`on_wakeup` surface,
//! * [`predictor`] — proactive pre-deployment (the paper's §VII outlook:
//!   on-demand "more so when combined with good prediction").

// Verifier-critical crate: non-test code must state its panic invariants via
// `expect` instead of bare `unwrap` (CI denies this warning; tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod annotate;
pub mod catalog;
pub mod controller;
pub mod dispatcher;
pub mod flowmemory;
pub mod policy;
pub mod predictor;
pub mod provisioning;
pub mod scheduler;

pub use annotate::{
    annotate, annotate_documents, AnnotateError, AnnotateOptions, AnnotatedService,
};
pub use catalog::{RegisteredService, ServiceCatalog, ServiceId};
pub use controller::{
    Controller, ControllerBuilder, ControllerConfig, ControllerOutput, ControllerStats, DeltaKind,
    DeployFailure, DeployGate, DeploymentRecord, StatusDelta, SwitchId,
};
pub use dispatcher::{AdmissionError, DeployError, DeployPhaseKind};
pub use flowmemory::{FlowKey, FlowMemory, FlowMemoryError, MemorizedFlow};
pub use policy::{RegistryEntry, SchedulerRegistry, SchedulerSpec, UnknownPolicy};
pub use predictor::{NoPrediction, OraclePredictor, PopularityPredictor, Predictor};
pub use provisioning::{BoundedCostProvisioning, TierSpillPlacement};
pub use scheduler::{
    ClusterId, ClusterView, ClusterViewBuilder, Decision, GlobalScheduler, HybridDockerFirst,
    HybridWasmFirst, LeastLoaded, LoadFraction, LocalScheduler, NearestReadyFirst, NearestWaiting,
    RoundRobinLocal, SchedulingContext,
};
