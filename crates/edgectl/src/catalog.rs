//! The registry of *registered services*.
//!
//! Paper §II: "The services to be redirected to the edge are first registered
//! with a mobile edge platform provider, identified by their unique
//! combination of domain name/IP address and port number." This module maps
//! that cloud-facing address to the deployable service definition.
//!
//! Service names are **interned**: registration assigns each distinct name a
//! stable, copyable [`ServiceId`] (a `u32`). The controller's hot path —
//! FlowMemory keys, scheduler calls, pending-deployment maps — passes ids
//! around instead of cloning `String`s, and resolves back to the name only at
//! the cluster-backend boundary via [`ServiceCatalog::name_arc`] (a refcount
//! bump, not an allocation).

use std::collections::HashMap;
use std::sync::Arc;

use cluster::ServiceTemplate;
use simcore::DetHashMap;
use simnet::SocketAddr;

/// Interned service name: a stable dense index into the catalog's name table.
/// Ids are never re-used — re-registering a previously seen name yields the
/// same id, and unregistration does not free it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u32);

/// One registered edge service.
#[derive(Debug, Clone)]
pub struct RegisteredService {
    /// Interned name (see [`ServiceId`]).
    pub id: ServiceId,
    /// The cloud address clients use (the flow-match key).
    pub cloud_addr: SocketAddr,
    /// The deployable definition (from the annotation engine). Shared so the
    /// deployment pipeline can hold it without deep-copying container lists.
    pub template: Arc<ServiceTemplate>,
}

/// Cloud address → service lookup, as the Dispatcher uses it on PacketIn.
#[derive(Debug, Default, Clone)]
pub struct ServiceCatalog {
    // Probed on every PacketIn, so a fast deterministic hasher; `services()`
    // sorts by address before exposing entries, keeping diagnostics and
    // audits in address order regardless of map internals.
    by_addr: DetHashMap<SocketAddr, RegisteredService>,
    by_name: HashMap<Arc<str>, SocketAddr>,
    /// Interner: name → id and id → name.
    ids: HashMap<Arc<str>, ServiceId>,
    names: Vec<Arc<str>>,
}

impl ServiceCatalog {
    pub fn new() -> ServiceCatalog {
        ServiceCatalog::default()
    }

    /// Intern a service name, assigning a fresh [`ServiceId`] on first sight.
    pub fn intern(&mut self, name: &str) -> ServiceId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let arc: Arc<str> = Arc::from(name);
        let id = ServiceId(self.names.len() as u32);
        self.names.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    /// The interned name behind `id` as a shared handle (refcount bump, no
    /// allocation). Panics on an id this catalog never issued.
    pub fn name_arc(&self, id: ServiceId) -> Arc<str> {
        Arc::clone(&self.names[id.0 as usize])
    }

    /// The interned name behind `id`, borrowed.
    pub fn name_of(&self, id: ServiceId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The id a name was interned under, if any.
    pub fn id_of(&self, name: &str) -> Option<ServiceId> {
        self.ids.get(name).copied()
    }

    /// Register a service. Replaces any previous registration of the same
    /// address (re-registration updates the definition) and returns the
    /// previous entry if there was one. The template's name is interned; the
    /// assigned [`ServiceId`] is stable across re-registrations.
    pub fn register(
        &mut self,
        cloud_addr: SocketAddr,
        template: ServiceTemplate,
    ) -> Option<RegisteredService> {
        let id = self.intern(&template.name);
        self.by_name.insert(self.name_arc(id), cloud_addr);
        self.by_addr.insert(
            cloud_addr,
            RegisteredService {
                id,
                cloud_addr,
                template: Arc::new(template),
            },
        )
    }

    pub fn unregister(&mut self, cloud_addr: SocketAddr) -> Option<RegisteredService> {
        let entry = self.by_addr.remove(&cloud_addr)?;
        self.by_name.remove(entry.template.name.as_str());
        Some(entry)
    }

    /// The Dispatcher's PacketIn lookup: is this destination a registered
    /// edge service?
    pub fn lookup(&self, addr: SocketAddr) -> Option<&RegisteredService> {
        self.by_addr.get(&addr)
    }

    pub fn lookup_name(&self, name: &str) -> Option<&RegisteredService> {
        self.by_addr.get(self.by_name.get(name)?)
    }

    pub fn len(&self) -> usize {
        self.by_addr.len()
    }
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }

    pub fn services(&self) -> impl Iterator<Item = &RegisteredService> {
        let mut entries: Vec<&RegisteredService> = self.by_addr.values().collect();
        entries.sort_by_key(|s| s.cloud_addr);
        entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::DurationDist;
    use simnet::IpAddr;

    fn addr(d: u8) -> SocketAddr {
        SocketAddr::new(IpAddr::new(93, 184, 0, d), 80)
    }

    fn tpl(name: &str) -> ServiceTemplate {
        ServiceTemplate::single(name, "nginx:1.23.2", 80, DurationDist::zero())
    }

    #[test]
    fn register_lookup_roundtrip() {
        let mut c = ServiceCatalog::new();
        assert!(c.register(addr(1), tpl("svc-a")).is_none());
        assert_eq!(c.lookup(addr(1)).unwrap().template.name, "svc-a");
        assert!(c.lookup(addr(2)).is_none());
        assert_eq!(c.lookup_name("svc-a").unwrap().cloud_addr, addr(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reregistration_replaces() {
        let mut c = ServiceCatalog::new();
        c.register(addr(1), tpl("old"));
        let prev = c.register(addr(1), tpl("new")).unwrap();
        assert_eq!(prev.template.name, "old");
        assert_eq!(c.lookup(addr(1)).unwrap().template.name, "new");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unregister_removes_both_indexes() {
        let mut c = ServiceCatalog::new();
        c.register(addr(1), tpl("svc"));
        assert!(c.unregister(addr(1)).is_some());
        assert!(c.lookup(addr(1)).is_none());
        assert!(c.lookup_name("svc").is_none());
        assert!(c.unregister(addr(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn interned_ids_are_stable_and_distinct() {
        let mut c = ServiceCatalog::new();
        c.register(addr(1), tpl("alpha"));
        c.register(addr(2), tpl("beta"));
        let alpha = c.lookup(addr(1)).unwrap().id;
        let beta = c.lookup(addr(2)).unwrap().id;
        assert_ne!(alpha, beta);
        assert_eq!(c.name_of(alpha), "alpha");
        assert_eq!(c.name_of(beta), "beta");
        assert_eq!(c.id_of("alpha"), Some(alpha));
        assert_eq!(c.id_of("gamma"), None);
        // Re-registering the same name (even at another address) keeps the id.
        c.register(addr(3), tpl("alpha"));
        assert_eq!(c.lookup(addr(3)).unwrap().id, alpha);
        // Unregistration does not free the id.
        c.unregister(addr(1));
        assert_eq!(c.name_of(alpha), "alpha");
        assert_eq!(&*c.name_arc(alpha), "alpha");
    }
}
