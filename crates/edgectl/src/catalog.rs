//! The registry of *registered services*.
//!
//! Paper §II: "The services to be redirected to the edge are first registered
//! with a mobile edge platform provider, identified by their unique
//! combination of domain name/IP address and port number." This module maps
//! that cloud-facing address to the deployable service definition.

use std::collections::HashMap;

use cluster::ServiceTemplate;
use simnet::SocketAddr;

/// One registered edge service.
#[derive(Debug, Clone)]
pub struct RegisteredService {
    /// The cloud address clients use (the flow-match key).
    pub cloud_addr: SocketAddr,
    /// The deployable definition (from the annotation engine).
    pub template: ServiceTemplate,
}

/// Cloud address → service lookup, as the Dispatcher uses it on PacketIn.
#[derive(Debug, Default, Clone)]
pub struct ServiceCatalog {
    by_addr: HashMap<SocketAddr, RegisteredService>,
    by_name: HashMap<String, SocketAddr>,
}

impl ServiceCatalog {
    pub fn new() -> ServiceCatalog {
        ServiceCatalog::default()
    }

    /// Register a service. Replaces any previous registration of the same
    /// address (re-registration updates the definition) and returns the
    /// previous entry if there was one.
    pub fn register(
        &mut self,
        cloud_addr: SocketAddr,
        template: ServiceTemplate,
    ) -> Option<RegisteredService> {
        self.by_name.insert(template.name.clone(), cloud_addr);
        self.by_addr.insert(
            cloud_addr,
            RegisteredService {
                cloud_addr,
                template,
            },
        )
    }

    pub fn unregister(&mut self, cloud_addr: SocketAddr) -> Option<RegisteredService> {
        let entry = self.by_addr.remove(&cloud_addr)?;
        self.by_name.remove(&entry.template.name);
        Some(entry)
    }

    /// The Dispatcher's PacketIn lookup: is this destination a registered
    /// edge service?
    pub fn lookup(&self, addr: SocketAddr) -> Option<&RegisteredService> {
        self.by_addr.get(&addr)
    }

    pub fn lookup_name(&self, name: &str) -> Option<&RegisteredService> {
        self.by_addr.get(self.by_name.get(name)?)
    }

    pub fn len(&self) -> usize {
        self.by_addr.len()
    }
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }

    pub fn services(&self) -> impl Iterator<Item = &RegisteredService> {
        self.by_addr.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::DurationDist;
    use simnet::IpAddr;

    fn addr(d: u8) -> SocketAddr {
        SocketAddr::new(IpAddr::new(93, 184, 0, d), 80)
    }

    fn tpl(name: &str) -> ServiceTemplate {
        ServiceTemplate::single(name, "nginx:1.23.2", 80, DurationDist::zero())
    }

    #[test]
    fn register_lookup_roundtrip() {
        let mut c = ServiceCatalog::new();
        assert!(c.register(addr(1), tpl("svc-a")).is_none());
        assert_eq!(c.lookup(addr(1)).unwrap().template.name, "svc-a");
        assert!(c.lookup(addr(2)).is_none());
        assert_eq!(c.lookup_name("svc-a").unwrap().cloud_addr, addr(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reregistration_replaces() {
        let mut c = ServiceCatalog::new();
        c.register(addr(1), tpl("old"));
        let prev = c.register(addr(1), tpl("new")).unwrap();
        assert_eq!(prev.template.name, "old");
        assert_eq!(c.lookup(addr(1)).unwrap().template.name, "new");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unregister_removes_both_indexes() {
        let mut c = ServiceCatalog::new();
        c.register(addr(1), tpl("svc"));
        assert!(c.unregister(addr(1)).is_some());
        assert!(c.lookup(addr(1)).is_none());
        assert!(c.lookup_name("svc").is_none());
        assert!(c.unregister(addr(1)).is_none());
        assert!(c.is_empty());
    }
}
