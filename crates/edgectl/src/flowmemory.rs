//! FlowMemory: the controller-side cache of installed redirect flows.
//!
//! Paper §V: the controller "memorizes all these flows in a component called
//! FlowMemory. This approach allows us to keep the idle-timeout values in the
//! switches low — if a request from the same client to the same service
//! arrives again, the controller can immediately install the same flow it
//! used before. However, also the memorized flows have an idle timeout …
//! Apart from removing stale flows, these timeouts serve a second purpose:
//! Our controller may automatically scale down idle edge service instances."
//!
//! Like the switch flow table, FlowMemory is indexed so the controller's
//! per-tick work no longer scales with the number of memorized flows:
//! a `(service, cluster)` secondary index makes the scale-down queries
//! (`flows_for_service`, `forget_service`, `services_with_flows`,
//! `retarget_service`) proportional to the flows of the touched service, and
//! a lazy-deletion min-heap keeps `next_expiry` an O(1) peek (see DESIGN.md,
//! "Flow pipeline complexity").
//!
//! Flows served by the real cloud carry `cluster: None` (no edge instance);
//! flows held on an in-flight deployment are stored as **pending**
//! placeholders — invisible to [`FlowMemory::recall`]'s fast path, but
//! visible to idle scale-down protection and the coherence audit — until the
//! dispatcher converts them with a real [`FlowMemory::remember`] when the
//! redirect installs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simcore::{DetHashMap, DetHashSet, SimDuration, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::catalog::ServiceId;
use crate::scheduler::ClusterId;

/// Key of a memorized flow: one client talking to one registered service.
/// The derived `Ord` (client ip, then service address) is the order in which
/// expiry and retarget results are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    pub client_ip: IpAddr,
    /// The *cloud* address of the registered service (pre-rewrite).
    pub service_addr: SocketAddr,
}

/// A memorized redirect decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorizedFlow {
    pub key: FlowKey,
    /// The service's interned id (for scale-down bookkeeping) — resolve to a
    /// name with [`crate::ServiceCatalog::name_of`].
    pub service: ServiceId,
    /// Where the flow redirects to.
    pub target: SocketAddr,
    /// The edge cluster serving the flow; `None` means the real cloud.
    pub cluster: Option<ClusterId>,
    pub installed_at: SimTime,
    pub last_seen: SimTime,
    /// A placeholder for a request held on an in-flight deployment: no
    /// switch rule exists yet, so `recall` never serves it. Converted to a
    /// real entry by the `remember` that installs the redirect.
    pub pending: bool,
}

/// Why a [`FlowMemory`] could not be constructed. Mirrors the
/// [`crate::annotate::AnnotateError`] pattern: a plain enum with `Display` so
/// callers can match or report without parsing panic strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowMemoryError {
    /// A zero idle timeout would evict every flow the instant it is
    /// remembered, silently disabling Follow-Me-Edge and scale-down logic.
    ZeroIdleTimeout,
}

impl std::fmt::Display for FlowMemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowMemoryError::ZeroIdleTimeout => {
                f.write_str("flow memory idle timeout must be non-zero (zero evicts instantly)")
            }
        }
    }
}

impl std::error::Error for FlowMemoryError {}

/// The FlowMemory component.
///
/// ```
/// use edgectl::{FlowKey, FlowMemory, ClusterId, ServiceId};
/// use simcore::{SimDuration, SimTime};
/// use simnet::{IpAddr, SocketAddr};
///
/// let mut memory = FlowMemory::new(SimDuration::from_secs(60)).expect("non-zero idle timeout");
/// let key = FlowKey {
///     client_ip: IpAddr::new(10, 1, 0, 1),
///     service_addr: SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80),
/// };
/// let target = SocketAddr::new(IpAddr::new(10, 0, 0, 100), 8000);
/// memory.remember(SimTime::ZERO, key, ServiceId(0), target, Some(ClusterId(0)));
/// // a minute of silence later, the entry has expired
/// assert!(memory.recall(SimTime::ZERO + SimDuration::from_secs(61), key).is_none());
/// ```
#[derive(Debug)]
pub struct FlowMemory {
    flows: DetHashMap<FlowKey, MemorizedFlow>,
    /// Secondary index: which flows reference a given `(service, cluster)`
    /// pair (`None` = cloud). Hashed on both levels because the per-request
    /// path maintains it on every new flow; the rare order-sensitive readers
    /// (`services_with_flows`, `retarget_service`) sort before exposure.
    /// Keys are copyable pairs, so probing the index never allocates.
    by_service: DetHashMap<(ServiceId, Option<ClusterId>), DetHashSet<FlowKey>>,
    /// Lazy-deletion expiry schedule of `(last_seen + idle_timeout, key)`.
    /// Invariant ("accurate top"): after every `&mut self` method the heap
    /// top is live — its flow exists and still expires at that instant — so
    /// [`FlowMemory::next_expiry`] is a plain peek.
    expiry: BinaryHeap<Reverse<(SimTime, FlowKey)>>,
    /// Idle timeout of *memorized* flows — longer than the switch's.
    idle_timeout: SimDuration,
}

impl FlowMemory {
    pub fn new(idle_timeout: SimDuration) -> Result<FlowMemory, FlowMemoryError> {
        if idle_timeout.is_zero() {
            return Err(FlowMemoryError::ZeroIdleTimeout);
        }
        Ok(FlowMemory {
            flows: DetHashMap::default(),
            by_service: DetHashMap::default(),
            expiry: BinaryHeap::new(),
            idle_timeout,
        })
    }

    pub fn idle_timeout(&self) -> SimDuration {
        self.idle_timeout
    }

    /// Record (or refresh) a flow decision. Converts a pending placeholder
    /// into a real entry (the install instant becomes `now`, matching a
    /// fresh insert).
    pub fn remember(
        &mut self,
        now: SimTime,
        key: FlowKey,
        service: ServiceId,
        target: SocketAddr,
        cluster: Option<ClusterId>,
    ) {
        match self.flows.get_mut(&key) {
            Some(f) => {
                if f.service != service || f.cluster != cluster {
                    Self::index_remove(&mut self.by_service, (f.service, f.cluster), key);
                    self.by_service
                        .entry((service, cluster))
                        .or_default()
                        .insert(key);
                }
                if f.pending {
                    f.pending = false;
                    f.installed_at = now;
                }
                f.target = target;
                f.cluster = cluster;
                f.service = service;
                f.last_seen = now;
            }
            None => {
                self.by_service
                    .entry((service, cluster))
                    .or_default()
                    .insert(key);
                self.flows.insert(
                    key,
                    MemorizedFlow {
                        key,
                        service,
                        target,
                        cluster,
                        installed_at: now,
                        last_seen: now,
                        pending: false,
                    },
                );
            }
        }
        self.expiry.push(Reverse((now + self.idle_timeout, key)));
        self.normalize_expiry();
    }

    /// Insert (or refresh) a pending placeholder for a request held on an
    /// in-flight deployment toward `cluster`. The placeholder redirects
    /// nowhere yet — its target is the service's own cloud address.
    pub fn remember_pending(
        &mut self,
        now: SimTime,
        key: FlowKey,
        service: ServiceId,
        cluster: Option<ClusterId>,
    ) {
        match self.flows.get_mut(&key) {
            Some(f) => {
                debug_assert!(f.pending, "never downgrade a live entry to pending");
                if f.cluster != cluster {
                    Self::index_remove(&mut self.by_service, (f.service, f.cluster), key);
                    self.by_service
                        .entry((service, cluster))
                        .or_default()
                        .insert(key);
                    f.cluster = cluster;
                }
                f.last_seen = now;
            }
            None => {
                self.by_service
                    .entry((service, cluster))
                    .or_default()
                    .insert(key);
                self.flows.insert(
                    key,
                    MemorizedFlow {
                        key,
                        service,
                        target: key.service_addr,
                        cluster,
                        installed_at: now,
                        last_seen: now,
                        pending: true,
                    },
                );
            }
        }
        self.expiry.push(Reverse((now + self.idle_timeout, key)));
        self.normalize_expiry();
    }

    /// Look up a live memorized flow, refreshing its idle timer. Expired
    /// entries are treated as absent (and dropped); pending placeholders are
    /// invisible here (the dispatcher owns their lifecycle) and are neither
    /// refreshed nor evicted.
    pub fn recall(&mut self, now: SimTime, key: FlowKey) -> Option<&MemorizedFlow> {
        let expired = match self.flows.get(&key) {
            Some(f) if f.pending => return None,
            Some(f) => now.since(f.last_seen) >= self.idle_timeout,
            None => return None,
        };
        if expired {
            self.detach(key);
            self.normalize_expiry();
            return None;
        }
        let deadline = now + self.idle_timeout;
        self.expiry.push(Reverse((deadline, key)));
        let f = self.flows.get_mut(&key).expect("checked live above");
        f.last_seen = now;
        self.normalize_expiry();
        Some(self.flows.get(&key).expect("checked live above"))
    }

    /// Peek without refreshing (diagnostics).
    pub fn get(&self, key: FlowKey) -> Option<&MemorizedFlow> {
        self.flows.get(&key)
    }

    /// Iterate over every memorized flow in [`FlowKey`] order (diagnostics —
    /// the coherence audit walks this against the installed switch entries;
    /// key order keeps audit reports stable across runs). The backing map
    /// stays a `HashMap` because the per-packet lookups are the hot path.
    pub fn iter(&self) -> impl Iterator<Item = &MemorizedFlow> {
        // edgelint: allow(det-collections) — sorted by FlowKey before exposure
        let mut sorted: Vec<&MemorizedFlow> = self.flows.values().collect();
        sorted.sort_by_key(|f| f.key);
        sorted.into_iter()
    }

    /// Drop a specific flow (e.g. its target instance was removed).
    pub fn forget(&mut self, key: FlowKey) -> Option<MemorizedFlow> {
        let removed = self.detach(key);
        self.normalize_expiry();
        removed
    }

    /// Drop all flows pointing at `service` on `cluster` (instance retired).
    /// O(flows of that instance), not O(all flows).
    pub fn forget_service(&mut self, service: ServiceId, cluster: Option<ClusterId>) -> usize {
        let keys = match self.by_service.remove(&(service, cluster)) {
            Some(keys) => keys,
            None => return 0,
        };
        let count = keys.len();
        for key in keys {
            self.flows.remove(&key);
        }
        self.normalize_expiry();
        count
    }

    /// Retarget every live flow of `service` to a new instance — what happens
    /// when the BEST deployment becomes ready and future requests move over
    /// (on-demand *without waiting*, paper Fig. 3). Returns the affected keys
    /// so the controller can re-install switch rules.
    pub fn retarget_service(
        &mut self,
        service: ServiceId,
        target: SocketAddr,
        cluster: ClusterId,
    ) -> Vec<FlowKey> {
        // All clusters (and the cloud) currently holding flows of this
        // service.
        let mut keys = Vec::new();
        for (&(svc, from_cluster), members) in &self.by_service {
            if svc != service {
                continue;
            }
            for &key in members {
                let f = &self.flows[&key];
                if f.target != target || from_cluster != Some(cluster) {
                    keys.push(key);
                }
            }
        }
        for &key in &keys {
            let f = self.flows.get_mut(&key).expect("key came from the index");
            let from = (f.service, f.cluster);
            f.target = target;
            f.cluster = Some(cluster);
            if from.1 != Some(cluster) {
                Self::index_remove(&mut self.by_service, from, key);
                self.by_service
                    .entry((service, Some(cluster)))
                    .or_default()
                    .insert(key);
            }
        }
        keys.sort();
        keys
    }

    /// Evict idle entries; returns them (the controller's scale-down input)
    /// sorted by key. O(evicted · log memory) thanks to the expiry heap.
    pub fn expire(&mut self, now: SimTime) -> Vec<MemorizedFlow> {
        let mut expired = Vec::new();
        loop {
            // The top is accurate, so `> now` means nothing else is due.
            match self.expiry.peek() {
                Some(&Reverse((deadline, key))) if deadline <= now => {
                    self.expiry.pop();
                    expired.push(self.detach(key).expect("accurate top pointed at live flow"));
                    self.normalize_expiry();
                }
                _ => break,
            }
        }
        expired.sort_by_key(|f| f.key);
        expired
    }

    /// Earliest instant any entry could expire. O(1): the heap top is kept
    /// accurate by every mutation.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.peek().map(|&Reverse((deadline, _))| deadline)
    }

    /// How many live flows reference `service` on `cluster` — zero means the
    /// instance is idle and a candidate for scale-down. Pending placeholders
    /// count too: a held request protects its deployment from scale-down.
    /// O(1) index lookup.
    pub fn flows_for_service(&self, service: ServiceId, cluster: Option<ClusterId>) -> usize {
        self.by_service
            .get(&(service, cluster))
            .map_or(0, DetHashSet::len)
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Distinct `(service, cluster)` pairs with live flows and their counts —
    /// the autoscaler's demand signal. O(pairs log pairs): reads the hashed
    /// secondary index and sorts so callers see `(service, cluster)` order
    /// (cloud `None` first), as the old BTreeMap exposed.
    pub fn services_with_flows(&self) -> Vec<(ServiceId, Option<ClusterId>, usize)> {
        let mut pairs: Vec<(ServiceId, Option<ClusterId>, usize)> = self
            .by_service
            .iter()
            .map(|(&(s, c), members)| (s, c, members.len()))
            .collect();
        pairs.sort_unstable_by_key(|&(s, c, _)| (s, c));
        pairs
    }

    /// Remove a flow from the primary map and the service index (the expiry
    /// heap keeps a stale record until it surfaces).
    fn detach(&mut self, key: FlowKey) -> Option<MemorizedFlow> {
        let flow = self.flows.remove(&key)?;
        Self::index_remove(&mut self.by_service, (flow.service, flow.cluster), key);
        Some(flow)
    }

    fn index_remove(
        index: &mut DetHashMap<(ServiceId, Option<ClusterId>), DetHashSet<FlowKey>>,
        at: (ServiceId, Option<ClusterId>),
        key: FlowKey,
    ) {
        if let Some(members) = index.get_mut(&at) {
            members.remove(&key);
            if members.is_empty() {
                index.remove(&at);
            }
        }
    }

    /// Restore the accurate-top invariant: pop records whose flow is gone or
    /// has been refreshed past the recorded deadline.
    fn normalize_expiry(&mut self) {
        while let Some(&Reverse((deadline, key))) = self.expiry.peek() {
            let live = self
                .flows
                .get(&key)
                .map(|f| f.last_seen + self.idle_timeout)
                == Some(deadline);
            if live {
                break;
            }
            self.expiry.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u8, s: u8) -> FlowKey {
        FlowKey {
            client_ip: IpAddr::new(10, 0, 0, c),
            service_addr: SocketAddr::new(IpAddr::new(93, 184, 0, s), 80),
        }
    }

    fn target(p: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), p)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn mem() -> FlowMemory {
        FlowMemory::new(SimDuration::from_secs(60)).unwrap()
    }

    #[test]
    fn zero_idle_timeout_is_a_typed_error() {
        assert_eq!(
            FlowMemory::new(SimDuration::ZERO).unwrap_err(),
            FlowMemoryError::ZeroIdleTimeout
        );
    }

    #[test]
    fn remember_recall() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        let f = m.recall(t(10), key(1, 1)).unwrap();
        assert_eq!(f.target, target(8000));
        assert_eq!(f.cluster, Some(ClusterId(0)));
        assert!(m.recall(t(10), key(2, 1)).is_none());
    }

    #[test]
    fn recall_refreshes_idle_timer() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        assert!(m.recall(t(50_000), key(1, 1)).is_some()); // refresh at 50 s
        assert!(
            m.recall(t(100_000), key(1, 1)).is_some(),
            "alive: refreshed at 50 s"
        );
        assert!(
            m.recall(t(170_000), key(1, 1)).is_none(),
            "expired 60 s after last use"
        );
        assert!(m.is_empty());
    }

    #[test]
    fn expire_returns_stale_entries() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(30_000),
            key(2, 1),
            ServiceId(1),
            target(8001),
            Some(ClusterId(0)),
        );
        let expired = m.expire(t(60_000));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].service, ServiceId(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn next_expiry_is_minimum() {
        let mut m = mem();
        assert_eq!(m.next_expiry(), None);
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(5000),
            key(2, 1),
            ServiceId(1),
            target(8001),
            Some(ClusterId(0)),
        );
        assert_eq!(m.next_expiry(), Some(t(60_000)));
    }

    #[test]
    fn next_expiry_tracks_refresh_and_forget() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(5000),
            key(2, 1),
            ServiceId(1),
            target(8001),
            Some(ClusterId(0)),
        );
        // refreshing the older flow moves the frontier to the younger one
        assert!(m.recall(t(20_000), key(1, 1)).is_some());
        assert_eq!(m.next_expiry(), Some(t(65_000)));
        m.forget(key(2, 1));
        assert_eq!(m.next_expiry(), Some(t(80_000)));
        m.forget(key(1, 1));
        assert_eq!(m.next_expiry(), None);
    }

    #[test]
    fn flows_for_service_counts() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(0),
            key(2, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(0),
            key(3, 2),
            ServiceId(1),
            target(8001),
            Some(ClusterId(1)),
        );
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(0))), 2);
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(1))), 0);
        assert_eq!(m.forget_service(ServiceId(0), Some(ClusterId(0))), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn services_with_flows_reports_sorted_counts() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(1),
            target(8000),
            Some(ClusterId(1)),
        );
        m.remember(
            t(0),
            key(2, 1),
            ServiceId(1),
            target(8000),
            Some(ClusterId(1)),
        );
        m.remember(
            t(0),
            key(3, 2),
            ServiceId(0),
            target(8001),
            Some(ClusterId(0)),
        );
        m.remember(t(0), key(4, 2), ServiceId(1), target(8002), None);
        assert_eq!(
            m.services_with_flows(),
            vec![
                (ServiceId(0), Some(ClusterId(0)), 1),
                (ServiceId(1), None, 1),
                (ServiceId(1), Some(ClusterId(1)), 2),
            ]
        );
    }

    #[test]
    fn retarget_moves_flows_and_reports_keys() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(0),
            key(2, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        let moved = m.retarget_service(ServiceId(0), target(30000), ClusterId(1));
        assert_eq!(moved.len(), 2);
        let f = m.get(key(1, 1)).unwrap();
        assert_eq!(f.target, target(30000));
        assert_eq!(f.cluster, Some(ClusterId(1)));
        // idempotent: retargeting again moves nothing
        assert!(m
            .retarget_service(ServiceId(0), target(30000), ClusterId(1))
            .is_empty());
        // and the index followed the move
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(0))), 0);
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(1))), 2);
    }

    #[test]
    fn retarget_gathers_flows_across_clusters_and_cloud() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(0),
            key(2, 1),
            ServiceId(0),
            target(8001),
            Some(ClusterId(2)),
        );
        m.remember(
            t(0),
            key(3, 2),
            ServiceId(1),
            target(8002),
            Some(ClusterId(0)),
        );
        // a cloud-served flow of the same service moves over too
        m.remember(t(0), key(4, 1), ServiceId(0), key(4, 1).service_addr, None);
        let moved = m.retarget_service(ServiceId(0), target(30000), ClusterId(1));
        assert_eq!(moved, vec![key(1, 1), key(2, 1), key(4, 1)]);
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(1))), 3);
        assert_eq!(m.flows_for_service(ServiceId(1), Some(ClusterId(0))), 1);
    }

    #[test]
    fn forget_specific_flow() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        assert!(m.forget(key(1, 1)).is_some());
        assert!(m.forget(key(1, 1)).is_none());
    }

    #[test]
    fn remember_updates_existing() {
        let mut m = mem();
        m.remember(
            t(0),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        m.remember(
            t(10),
            key(1, 1),
            ServiceId(0),
            target(9000),
            Some(ClusterId(1)),
        );
        assert_eq!(m.len(), 1);
        let f = m.get(key(1, 1)).unwrap();
        assert_eq!(f.target, target(9000));
        assert_eq!(f.installed_at, t(0), "original install time preserved");
        assert_eq!(f.last_seen, t(10));
        // the index moved with the cluster change
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(0))), 0);
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(1))), 1);
    }

    #[test]
    fn pending_is_invisible_to_recall_but_counts_for_scale_down() {
        let mut m = mem();
        m.remember_pending(t(0), key(1, 1), ServiceId(0), Some(ClusterId(0)));
        assert!(m.recall(t(10), key(1, 1)).is_none(), "no switch rule yet");
        assert!(m.get(key(1, 1)).is_some_and(|f| f.pending));
        // ... but the held request protects the deployment from scale-down
        assert_eq!(m.flows_for_service(ServiceId(0), Some(ClusterId(0))), 1);
    }

    #[test]
    fn remember_converts_pending_and_resets_install_time() {
        let mut m = mem();
        m.remember_pending(t(0), key(1, 1), ServiceId(0), Some(ClusterId(0)));
        // refreshing the placeholder keeps it pending
        m.remember_pending(t(100), key(1, 1), ServiceId(0), Some(ClusterId(0)));
        assert!(m.get(key(1, 1)).is_some_and(|f| f.pending));
        // the deployment became ready: the redirect install converts it
        m.remember(
            t(500),
            key(1, 1),
            ServiceId(0),
            target(8000),
            Some(ClusterId(0)),
        );
        let f = m.get(key(1, 1)).unwrap();
        assert!(!f.pending);
        assert_eq!(f.installed_at, t(500), "install instant is the conversion");
        assert!(m.recall(t(600), key(1, 1)).is_some());
    }

    #[test]
    fn pending_expires_like_any_entry() {
        let mut m = mem();
        m.remember_pending(t(0), key(1, 1), ServiceId(0), Some(ClusterId(0)));
        assert_eq!(m.next_expiry(), Some(t(60_000)));
        let expired = m.expire(t(60_000));
        assert_eq!(expired.len(), 1);
        assert!(expired[0].pending);
        assert!(m.is_empty());
    }
}
