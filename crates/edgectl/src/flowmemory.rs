//! FlowMemory: the controller-side cache of installed redirect flows.
//!
//! Paper §V: the controller "memorizes all these flows in a component called
//! FlowMemory. This approach allows us to keep the idle-timeout values in the
//! switches low — if a request from the same client to the same service
//! arrives again, the controller can immediately install the same flow it
//! used before. However, also the memorized flows have an idle timeout …
//! Apart from removing stale flows, these timeouts serve a second purpose:
//! Our controller may automatically scale down idle edge service instances."

use std::collections::HashMap;

use simcore::{SimDuration, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::scheduler::ClusterId;

/// Key of a memorized flow: one client talking to one registered service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub client_ip: IpAddr,
    /// The *cloud* address of the registered service (pre-rewrite).
    pub service_addr: SocketAddr,
}

/// A memorized redirect decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorizedFlow {
    pub key: FlowKey,
    /// The service's unique name (for scale-down bookkeeping).
    pub service: String,
    /// Where the flow redirects to.
    pub target: SocketAddr,
    pub cluster: ClusterId,
    pub installed_at: SimTime,
    pub last_seen: SimTime,
}

/// The FlowMemory component.
///
/// ```
/// use edgectl::{FlowKey, FlowMemory, ClusterId};
/// use simcore::{SimDuration, SimTime};
/// use simnet::{IpAddr, SocketAddr};
///
/// let mut memory = FlowMemory::new(SimDuration::from_secs(60));
/// let key = FlowKey {
///     client_ip: IpAddr::new(10, 1, 0, 1),
///     service_addr: SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80),
/// };
/// let target = SocketAddr::new(IpAddr::new(10, 0, 0, 100), 8000);
/// memory.remember(SimTime::ZERO, key, "edge-web", target, ClusterId(0));
/// // a minute of silence later, the entry has expired
/// assert!(memory.recall(SimTime::ZERO + SimDuration::from_secs(61), key).is_none());
/// ```
#[derive(Debug)]
pub struct FlowMemory {
    flows: HashMap<FlowKey, MemorizedFlow>,
    /// Idle timeout of *memorized* flows — longer than the switch's.
    idle_timeout: SimDuration,
}

impl FlowMemory {
    pub fn new(idle_timeout: SimDuration) -> FlowMemory {
        assert!(!idle_timeout.is_zero(), "zero idle timeout would evict instantly");
        FlowMemory { flows: HashMap::new(), idle_timeout }
    }

    pub fn idle_timeout(&self) -> SimDuration {
        self.idle_timeout
    }

    /// Record (or refresh) a flow decision.
    pub fn remember(
        &mut self,
        now: SimTime,
        key: FlowKey,
        service: impl Into<String>,
        target: SocketAddr,
        cluster: ClusterId,
    ) {
        let service = service.into();
        self.flows
            .entry(key)
            .and_modify(|f| {
                f.target = target;
                f.cluster = cluster;
                f.service = service.clone();
                f.last_seen = now;
            })
            .or_insert(MemorizedFlow {
                key,
                service,
                target,
                cluster,
                installed_at: now,
                last_seen: now,
            });
    }

    /// Look up a live memorized flow, refreshing its idle timer. Expired
    /// entries are treated as absent (and dropped).
    pub fn recall(&mut self, now: SimTime, key: FlowKey) -> Option<&MemorizedFlow> {
        let expired = match self.flows.get(&key) {
            Some(f) => now.since(f.last_seen) >= self.idle_timeout,
            None => return None,
        };
        if expired {
            self.flows.remove(&key);
            return None;
        }
        let f = self.flows.get_mut(&key).unwrap();
        f.last_seen = now;
        Some(f)
    }

    /// Peek without refreshing (diagnostics).
    pub fn get(&self, key: FlowKey) -> Option<&MemorizedFlow> {
        self.flows.get(&key)
    }

    /// Drop a specific flow (e.g. its target instance was removed).
    pub fn forget(&mut self, key: FlowKey) -> Option<MemorizedFlow> {
        self.flows.remove(&key)
    }

    /// Drop all flows pointing at `service` on `cluster` (instance retired).
    pub fn forget_service(&mut self, service: &str, cluster: ClusterId) -> usize {
        let before = self.flows.len();
        self.flows
            .retain(|_, f| !(f.service == service && f.cluster == cluster));
        before - self.flows.len()
    }

    /// Retarget every live flow of `service` to a new instance — what happens
    /// when the BEST deployment becomes ready and future requests move over
    /// (on-demand *without waiting*, paper Fig. 3). Returns the affected keys
    /// so the controller can re-install switch rules.
    pub fn retarget_service(
        &mut self,
        service: &str,
        target: SocketAddr,
        cluster: ClusterId,
    ) -> Vec<FlowKey> {
        let mut keys = Vec::new();
        for f in self.flows.values_mut() {
            if f.service == service && (f.target != target || f.cluster != cluster) {
                f.target = target;
                f.cluster = cluster;
                keys.push(f.key);
            }
        }
        keys.sort_by_key(|k| (k.client_ip, k.service_addr));
        keys
    }

    /// Evict idle entries; returns them (the controller's scale-down input).
    pub fn expire(&mut self, now: SimTime) -> Vec<MemorizedFlow> {
        let timeout = self.idle_timeout;
        let mut expired = Vec::new();
        self.flows.retain(|_, f| {
            if now.since(f.last_seen) >= timeout {
                expired.push(f.clone());
                false
            } else {
                true
            }
        });
        expired.sort_by_key(|f| (f.key.client_ip, f.key.service_addr));
        expired
    }

    /// Earliest instant any entry could expire.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.flows
            .values()
            .map(|f| f.last_seen + self.idle_timeout)
            .min()
    }

    /// How many live flows reference `service` on `cluster` — zero means the
    /// instance is idle and a candidate for scale-down.
    pub fn flows_for_service(&self, service: &str, cluster: ClusterId) -> usize {
        self.flows
            .values()
            .filter(|f| f.service == service && f.cluster == cluster)
            .count()
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Distinct `(service, cluster)` pairs with live flows and their counts —
    /// the autoscaler's demand signal.
    pub fn services_with_flows(&self) -> Vec<(String, ClusterId, usize)> {
        let mut counts: HashMap<(String, ClusterId), usize> = HashMap::new();
        for f in self.flows.values() {
            *counts.entry((f.service.clone(), f.cluster)).or_insert(0) += 1;
        }
        let mut out: Vec<(String, ClusterId, usize)> = counts
            .into_iter()
            .map(|((s, c), n)| (s, c, n))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u8, s: u8) -> FlowKey {
        FlowKey {
            client_ip: IpAddr::new(10, 0, 0, c),
            service_addr: SocketAddr::new(IpAddr::new(93, 184, 0, s), 80),
        }
    }

    fn target(p: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), p)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn mem() -> FlowMemory {
        FlowMemory::new(SimDuration::from_secs(60))
    }

    #[test]
    fn remember_recall() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        let f = m.recall(t(10), key(1, 1)).unwrap();
        assert_eq!(f.target, target(8000));
        assert_eq!(f.cluster, ClusterId(0));
        assert!(m.recall(t(10), key(2, 1)).is_none());
    }

    #[test]
    fn recall_refreshes_idle_timer() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        assert!(m.recall(t(50_000), key(1, 1)).is_some()); // refresh at 50 s
        assert!(m.recall(t(100_000), key(1, 1)).is_some(), "alive: refreshed at 50 s");
        assert!(m.recall(t(170_000), key(1, 1)).is_none(), "expired 60 s after last use");
        assert!(m.is_empty());
    }

    #[test]
    fn expire_returns_stale_entries() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "a", target(8000), ClusterId(0));
        m.remember(t(30_000), key(2, 1), "b", target(8001), ClusterId(0));
        let expired = m.expire(t(60_000));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].service, "a");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn next_expiry_is_minimum() {
        let mut m = mem();
        assert_eq!(m.next_expiry(), None);
        m.remember(t(0), key(1, 1), "a", target(8000), ClusterId(0));
        m.remember(t(5000), key(2, 1), "b", target(8001), ClusterId(0));
        assert_eq!(m.next_expiry(), Some(t(60_000)));
    }

    #[test]
    fn flows_for_service_counts() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        m.remember(t(0), key(2, 1), "svc", target(8000), ClusterId(0));
        m.remember(t(0), key(3, 2), "other", target(8001), ClusterId(1));
        assert_eq!(m.flows_for_service("svc", ClusterId(0)), 2);
        assert_eq!(m.flows_for_service("svc", ClusterId(1)), 0);
        assert_eq!(m.forget_service("svc", ClusterId(0)), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retarget_moves_flows_and_reports_keys() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        m.remember(t(0), key(2, 1), "svc", target(8000), ClusterId(0));
        let moved = m.retarget_service("svc", target(30000), ClusterId(1));
        assert_eq!(moved.len(), 2);
        let f = m.get(key(1, 1)).unwrap();
        assert_eq!(f.target, target(30000));
        assert_eq!(f.cluster, ClusterId(1));
        // idempotent: retargeting again moves nothing
        assert!(m.retarget_service("svc", target(30000), ClusterId(1)).is_empty());
    }

    #[test]
    fn forget_specific_flow() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        assert!(m.forget(key(1, 1)).is_some());
        assert!(m.forget(key(1, 1)).is_none());
    }

    #[test]
    fn remember_updates_existing() {
        let mut m = mem();
        m.remember(t(0), key(1, 1), "svc", target(8000), ClusterId(0));
        m.remember(t(10), key(1, 1), "svc", target(9000), ClusterId(1));
        assert_eq!(m.len(), 1);
        let f = m.get(key(1, 1)).unwrap();
        assert_eq!(f.target, target(9000));
        assert_eq!(f.installed_at, t(0), "original install time preserved");
        assert_eq!(f.last_seen, t(10));
    }
}
