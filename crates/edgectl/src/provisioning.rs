//! Provisioning policies ported from Cohen et al.
//!
//! Two provable-guarantee algorithms from the related work, adapted to the
//! paper's FAST/BEST decision interface:
//!
//! * [`BoundedCostProvisioning`] — the rent-or-buy (ski-rental) scheme of
//!   *"Dynamic service provisioning in the edge-cloud continuum with bounded
//!   resources"* (arXiv:2202.08903). Serving a request remotely "rents" at
//!   the latency gap between the remote location and the best edge site;
//!   deploying "buys" at a fixed cost. The policy deploys once the
//!   accumulated rent of a service reaches the deployment cost, which bounds
//!   total cost to at most twice the offline optimum (the classic 2-
//!   competitive ski-rental argument).
//! * [`TierSpillPlacement`] — the distributed asynchronous placement of
//!   *"A scalable multi-tier edge-cloud placement"* line (arXiv:2312.11187):
//!   sites are ordered into latency tiers; each request is served by the
//!   lowest tier holding a ready instance and placed at the lowest tier with
//!   spare capacity, spilling upward tier by tier with the cloud as the
//!   infinite top tier. No request is ever rejected (every placement either
//!   fits a tier or lands in the cloud).
//!
//! Both consult the [`SchedulingContext`]'s capacity/label eligibility, so
//! under finite [`cluster::SiteCapacity`] they only ever nominate sites the
//! dispatcher will admit.

use std::collections::HashMap;

use simcore::SimDuration;

use crate::catalog::ServiceId;
use crate::scheduler::{nearest, Decision, GlobalScheduler, SchedulingContext};

/// Ski-rental dynamic service provisioning (arXiv:2202.08903).
#[derive(Debug, Clone)]
pub struct BoundedCostProvisioning {
    /// The "buy" price: accumulated remote-serving rent (in seconds of extra
    /// latency) that triggers an edge deployment.
    pub deploy_cost_secs: f64,
    /// Latency assumed for cloud-served requests when no edge instance is
    /// ready anywhere (the views carry no cloud distance).
    pub cloud_latency: SimDuration,
    /// Accumulated rent per service since its last deployment decision.
    accrued: HashMap<ServiceId, f64>,
}

impl Default for BoundedCostProvisioning {
    fn default() -> Self {
        BoundedCostProvisioning {
            deploy_cost_secs: 1.0,
            cloud_latency: SimDuration::from_millis(40),
            accrued: HashMap::new(),
        }
    }
}

impl GlobalScheduler for BoundedCostProvisioning {
    fn name(&self) -> &'static str {
        "bounded-cost"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        let fast = nearest(ctx.views, |v| v.status.is_ready());
        // The "buy" target: the nearest site that would admit the service.
        let Some(candidate) = nearest(ctx.views, |v| ctx.eligible(v) || v.status.is_ready()) else {
            return match fast {
                Some(id) => Decision::fast(id),
                None => Decision::cloud(),
            };
        };
        let candidate_view = &ctx.views[ctx
            .views
            .iter()
            .position(|v| v.id == candidate)
            .expect("nearest returns an id from views")];
        if candidate_view.status.is_ready() {
            // Already bought: serve at the optimum, reset the meter.
            self.accrued.insert(ctx.service, 0.0);
            return Decision::fast(candidate);
        }
        if candidate_view.deploying {
            // Purchase in progress — keep renting without double-paying.
            return match fast {
                Some(id) => Decision::fast(id),
                None => Decision::cloud(),
            };
        }
        // Rent: the latency gap this request pays by being served remotely.
        let remote = match fast {
            Some(id) => {
                ctx.views
                    .iter()
                    .find(|v| v.id == id)
                    .expect("fast id comes from views")
                    .distance
            }
            None => self.cloud_latency,
        };
        let rent = (remote.as_secs_f64() - candidate_view.distance.as_secs_f64()).max(0.0);
        let paid = self.accrued.entry(ctx.service).or_insert(0.0);
        *paid += rent;
        if *paid >= self.deploy_cost_secs {
            // Buy: deploy at the candidate without waiting; the current
            // request still rents (FAST or cloud).
            *paid = 0.0;
            return Decision::serve_and_deploy(fast, Some(candidate));
        }
        match fast {
            Some(id) => Decision::fast(id),
            None => Decision::cloud(),
        }
    }
}

/// Multi-tier spill placement (arXiv:2312.11187).
#[derive(Debug, Clone, Default)]
pub struct TierSpillPlacement;

impl GlobalScheduler for TierSpillPlacement {
    fn name(&self) -> &'static str {
        "tier-spill"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        // Tiers are the latency order of the views; ties break on id (the
        // same deterministic order every policy here uses).
        let mut tiers: Vec<&crate::scheduler::ClusterView> = ctx.views.iter().collect();
        tiers.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)));
        // Serve from the lowest tier with a ready instance.
        let fast = tiers.iter().find(|v| v.status.is_ready()).map(|v| v.id);
        // Place at the lowest tier that admits the service (a site already
        // running or deploying it counts as placed there).
        let place = tiers
            .iter()
            .find(|v| v.status.is_ready() || v.deploying || ctx.eligible(v))
            .map(|v| v.id);
        match place {
            // Placement tier found: serve there if it is the ready one
            // (with-waiting deploy if nothing is ready anywhere).
            Some(p) => {
                if fast.is_none() && !ctx.views.iter().any(|v| v.id == p && v.deploying) {
                    // Nothing ready anywhere: deploy with waiting at the
                    // placement tier instead of bouncing off the cloud.
                    Decision::fast(p)
                } else {
                    Decision::serve_and_deploy(fast, Some(p))
                }
            }
            // Every tier is full: spill to the infinite top tier (cloud).
            None => match fast {
                Some(id) => Decision::fast(id),
                None => Decision::cloud(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cluster::{
        ClusterKind, DeploymentRequirements, ResourceAllocation, ResourceRequest, SiteCapacity,
    };
    use simcore::SimTime;

    use super::*;
    use crate::catalog::ServiceCatalog;
    use crate::scheduler::testutil::view;
    use crate::scheduler::{ClusterId, ClusterView};

    fn ctx_decide(
        s: &mut impl GlobalScheduler,
        views: &[ClusterView],
        demand: ResourceRequest,
    ) -> Decision {
        let catalog = ServiceCatalog::new();
        let reqs = DeploymentRequirements::none();
        let ctx =
            SchedulingContext::new(ServiceId(7), views, demand, &reqs, &catalog, SimTime::ZERO);
        s.decide(&ctx)
    }

    fn full_site(id: usize, distance_ms: u64) -> ClusterView {
        let mut v = view(id, ClusterKind::Docker, distance_ms, false);
        v.capacity = SiteCapacity::new(100, 64);
        v.allocated = {
            let mut a = ResourceAllocation::default();
            a.add(&ResourceRequest::new(100, 64), 1);
            a
        };
        v
    }

    #[test]
    fn bounded_cost_rents_until_threshold_then_buys() {
        let mut s = BoundedCostProvisioning {
            deploy_cost_secs: 0.05,
            ..BoundedCostProvisioning::default()
        };
        // far ready instance (30ms), near empty site (2ms): rent 28ms/request
        let views = [
            view(0, ClusterKind::Docker, 2, false),
            view(1, ClusterKind::Docker, 30, true),
        ];
        let demand = ResourceRequest::new(100, 64);
        let d1 = ctx_decide(&mut s, &views, demand);
        assert_eq!(d1, Decision::fast(ClusterId(1)), "first request rents");
        let d2 = ctx_decide(&mut s, &views, demand);
        assert_eq!(
            d2,
            Decision::serve_and_deploy(Some(ClusterId(1)), Some(ClusterId(0))),
            "accrued 56ms ≥ 50ms: buy at the near site, keep serving far"
        );
        // once the near site is ready the meter resets and it serves
        let mut ready_views = views.clone();
        ready_views[0] = view(0, ClusterKind::Docker, 2, true);
        let d3 = ctx_decide(&mut s, &ready_views, demand);
        assert_eq!(d3, Decision::fast(ClusterId(0)));
    }

    #[test]
    fn bounded_cost_skips_full_sites() {
        let mut s = BoundedCostProvisioning {
            deploy_cost_secs: 0.0, // buy immediately
            ..BoundedCostProvisioning::default()
        };
        let views = [full_site(0, 2), view(1, ClusterKind::Docker, 30, true)];
        let d = ctx_decide(&mut s, &views, ResourceRequest::new(100, 64));
        assert_eq!(
            d,
            Decision::fast(ClusterId(1)),
            "full near site is not a candidate; the ready far site is optimal"
        );
    }

    #[test]
    fn bounded_cost_waits_while_deploying() {
        let mut s = BoundedCostProvisioning {
            deploy_cost_secs: 0.0,
            ..BoundedCostProvisioning::default()
        };
        let mut near = view(0, ClusterKind::Docker, 2, false);
        near.deploying = true;
        let views = [near, view(1, ClusterKind::Docker, 30, true)];
        let d = ctx_decide(&mut s, &views, ResourceRequest::new(100, 64));
        assert_eq!(d, Decision::fast(ClusterId(1)), "no double purchase");
    }

    #[test]
    fn tier_spill_places_at_lowest_tier_with_room() {
        let mut s = TierSpillPlacement;
        let views = [
            full_site(0, 1),
            view(1, ClusterKind::Docker, 5, false),
            view(2, ClusterKind::Docker, 20, true),
        ];
        let d = ctx_decide(&mut s, &views, ResourceRequest::new(100, 64));
        assert_eq!(
            d,
            Decision::serve_and_deploy(Some(ClusterId(2)), Some(ClusterId(1))),
            "tier 0 full → spill to tier 1; serve from the ready tier 2"
        );
    }

    #[test]
    fn tier_spill_deploys_with_waiting_when_nothing_ready() {
        let mut s = TierSpillPlacement;
        let views = [full_site(0, 1), view(1, ClusterKind::Docker, 5, false)];
        let d = ctx_decide(&mut s, &views, ResourceRequest::new(100, 64));
        assert_eq!(d, Decision::fast(ClusterId(1)), "with-waiting at tier 1");
    }

    #[test]
    fn tier_spill_spills_to_cloud_when_everything_full() {
        let mut s = TierSpillPlacement;
        let views = [full_site(0, 1), full_site(1, 5)];
        let d = ctx_decide(&mut s, &views, ResourceRequest::new(100, 64));
        assert_eq!(d, Decision::cloud(), "the cloud is the infinite top tier");
    }

    #[test]
    fn tier_spill_respects_labels() {
        let mut s = TierSpillPlacement;
        let near = view(0, ClusterKind::Docker, 1, false);
        let mut far = view(1, ClusterKind::Docker, 5, false);
        far.labels = Arc::from(vec!["gpu".to_owned()]);
        let catalog = ServiceCatalog::new();
        let mut reqs = DeploymentRequirements::none();
        reqs.label_match_all.push("gpu".to_owned());
        let views = [near, far];
        let ctx = SchedulingContext::new(
            ServiceId(7),
            &views,
            ResourceRequest::new(100, 64),
            &reqs,
            &catalog,
            SimTime::ZERO,
        );
        let d = s.decide(&ctx);
        assert_eq!(
            d,
            Decision::fast(ClusterId(1)),
            "only the gpu site qualifies"
        );
    }
}
