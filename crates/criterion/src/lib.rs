//! Offline stand-in for the crates.io `criterion` bench harness.
//!
//! The build container cannot reach a cargo registry, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Statistics are deliberately simple — each
//! benchmark is warmed up briefly, then timed over a fixed number of batches
//! and reported as median ns/iter on stdout. That is enough to compare
//! before/after on the same machine, which is all this repo's acceptance
//! criteria need; it does not attempt criterion's outlier analysis or HTML
//! reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed batches we collect per benchmark (median is reported).
const BATCHES: usize = 15;
/// Target wall time per batch during calibration.
const BATCH_TARGET: Duration = Duration::from_millis(40);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(60);

/// Strategy for `iter_batched` setup/teardown batching. The shim times each
/// routine invocation individually, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier combining a function name and a parameter, e.g. `lookup/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to the closure given to `bench_function` et al.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by the timing loop.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine` repeatedly and record the median ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate how many calls fit in one batch.
        let mut iters_per_batch = 1u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed < BATCH_TARGET {
                let grow = if elapsed.as_nanos() == 0 {
                    16
                } else {
                    ((BATCH_TARGET.as_nanos() / elapsed.as_nanos()) as u64).clamp(2, 16)
                };
                iters_per_batch = iters_per_batch.saturating_mul(grow).min(1 << 24);
            }
        }

        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// `iter` with a per-call setup closure whose cost is excluded from the
    /// reported time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(BATCHES * 4);
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        // Time each routine call individually; setup runs outside the clock.
        let target_samples = BATCHES * 8;
        for _ in 0..target_samples {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let elapsed = t.elapsed();
            black_box(out);
            samples.push(elapsed.as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("{name:<60} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{name:<60} {:>12.3} us/iter", ns / 1_000.0);
    } else {
        println!("{name:<60} {:>12.1} ns/iter", ns);
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    report(name, b.ns_per_iter);
}

/// Named group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: fmt::Display, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("lookup", 1024).to_string(), "lookup/1024");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        g.finish();
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.ns_per_iter >= 0.0);
    }
}
