//! Fixture: process-entropy randomness. `edgelint` must flag `thread_rng`
//! and `RandomState::new`. Never compiled.

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn seeded_state() -> RandomState {
    RandomState::new()
}
