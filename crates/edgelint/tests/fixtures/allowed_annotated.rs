//! Fixture: every finding is suppressed by a well-formed, reasoned
//! `allow` — `edgelint` must report nothing here. Never compiled.

use std::collections::HashMap;

pub struct Stats {
    samples: HashMap<u64, f64>,
}

impl Stats {
    pub fn total(&self) -> f64 {
        // edgelint: allow(det-collections) — sum() is a commutative reduction
        self.samples.values().copied().collect::<Vec<f64>>().iter().sum()
    }

    pub fn wall_clock_label() -> String {
        // edgelint: allow(ambient-time) — label for a human report, never traced
        format!("{:?}", Instant::now())
    }
}
