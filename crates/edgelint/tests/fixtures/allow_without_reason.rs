//! Fixture: an `allow` with no reason string. `edgelint` must report a
//! `malformed-allow` AND still report the underlying `det-collections`
//! violation (an unexplained suppression does not suppress). Never compiled.

use std::collections::HashSet;

pub struct Tracker {
    seen: HashSet<u64>,
}

impl Tracker {
    pub fn snapshot(&self) -> Vec<u64> {
        // edgelint: allow(det-collections)
        self.seen.iter().copied().collect()
    }
}
