//! Fixture: non-total float ordering. `edgelint` must flag the
//! `.partial_cmp(..).unwrap()` sort key. Never compiled.

pub fn rank(mut latencies: Vec<f64>) -> Vec<f64> {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies
}
