//! Fixture: wall-clock reads in simulation code. `edgelint` must flag both
//! the wall-clock read and the blocking sleep. Never compiled.

use std::time::Instant;

pub fn measure() -> u64 {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    t0.elapsed().as_nanos() as u64
}
