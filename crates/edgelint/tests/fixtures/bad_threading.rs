//! Fixture: within-run thread primitives outside the shard-runner module.
//! `edgelint` must flag the channel import, the lock, and the spawn.
//! Never compiled.

use std::sync::mpsc::channel;

pub fn racy_fan_out(work: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let (tx, rx) = channel();
    let handle = thread::spawn(move || {
        tx.send(work.len() as u64).expect("send");
    });
    handle.join().expect("join");
    *total.lock().expect("lock") + rx.recv().expect("recv")
}
