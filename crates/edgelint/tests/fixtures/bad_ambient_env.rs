//! Fixture: environment read outside bin/config code. `edgelint` must flag
//! the `env::var` call. Never compiled.

pub fn shard_count() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
