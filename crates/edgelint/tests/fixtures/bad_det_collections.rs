//! Fixture: trace-affecting iteration over a hash-seeded collection.
//! `edgelint` must flag the `.values()` chain and the bare `for` loop.
//! Never compiled — read as text by `fixtures.rs`.

use std::collections::HashMap;

pub struct Dispatcher {
    pending: HashMap<u64, u32>,
}

impl Dispatcher {
    pub fn drain_in_hash_order(&self) -> Vec<u32> {
        self.pending.values().copied().collect()
    }

    pub fn visit(&self) {
        for (_k, _v) in &self.pending {
            // order observed here differs per process
        }
    }
}
