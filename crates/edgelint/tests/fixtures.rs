//! Mutation-style liveness proof for every lint: each committed bad fixture
//! MUST be flagged (with correct file:line provenance), the fully annotated
//! fixture MUST pass, and a reason-less `allow` MUST fail. If a lint is ever
//! disabled or its detection broken, the corresponding test here fails CI.

use std::path::Path;

use edgelint::{check_source, FileOptions, Lint, Violation};

fn check(name: &str, source: &str) -> Vec<Violation> {
    check_source(Path::new(name), source, FileOptions::default())
}

/// Line numbers (1-based) in `source` on which `lint` fired.
fn lines_for(violations: &[Violation], lint: Lint) -> Vec<u32> {
    violations
        .iter()
        .filter(|v| v.lint == lint)
        .map(|v| v.line)
        .collect()
}

/// The 1-based line of `source` containing `needle` (must be unique).
fn line_of(source: &str, needle: &str) -> u32 {
    let hits: Vec<u32> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    assert_eq!(hits.len(), 1, "`{needle}` not unique in fixture: {hits:?}");
    hits[0]
}

#[test]
fn det_collections_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_det_collections.rs");
    let violations = check("bad_det_collections.rs", src);
    let lines = lines_for(&violations, Lint::DetCollections);
    assert!(
        lines.contains(&line_of(src, "self.pending.values()")),
        "missing .values() finding: {violations:?}"
    );
    assert!(
        lines.contains(&line_of(src, "for (_k, _v) in &self.pending")),
        "missing for-loop finding: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.lint == Lint::DetCollections));
    assert!(violations
        .iter()
        .all(|v| v.file == Path::new("bad_det_collections.rs")));
}

#[test]
fn ambient_time_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_ambient_time.rs");
    let violations = check("bad_ambient_time.rs", src);
    let lines = lines_for(&violations, Lint::AmbientTime);
    assert!(
        lines.contains(&line_of(src, "Instant::now()")),
        "{violations:?}"
    );
    assert!(
        lines.contains(&line_of(src, "std::thread::sleep")),
        "{violations:?}"
    );
}

#[test]
fn ambient_rng_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_ambient_rng.rs");
    let violations = check("bad_ambient_rng.rs", src);
    let lines = lines_for(&violations, Lint::AmbientRng);
    assert!(
        lines.contains(&line_of(src, "thread_rng()")),
        "{violations:?}"
    );
    assert!(
        lines.contains(&line_of(src, "RandomState::new()")),
        "{violations:?}"
    );
}

#[test]
fn ambient_env_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_ambient_env.rs");
    let violations = check("bad_ambient_env.rs", src);
    assert_eq!(
        lines_for(&violations, Lint::AmbientEnv),
        vec![line_of(src, "std::env::var")],
        "{violations:?}"
    );
    // The same file under bin/config options is exempt — the lint is a
    // boundary rule, not a blanket ban.
    let as_bin = check_source(
        Path::new("src/bin/tool.rs"),
        src,
        FileOptions::for_path(Path::new("src/bin/tool.rs")),
    );
    assert_eq!(as_bin, vec![], "bin code may read the environment");
}

#[test]
fn float_order_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_float_order.rs");
    let violations = check("bad_float_order.rs", src);
    assert_eq!(
        lines_for(&violations, Lint::FloatOrder),
        vec![line_of(src, "partial_cmp(b).unwrap()")],
        "{violations:?}"
    );
}

#[test]
fn threading_fixture_is_flagged_with_provenance() {
    let src = include_str!("fixtures/bad_threading.rs");
    let violations = check("bad_threading.rs", src);
    let lines = lines_for(&violations, Lint::Threading);
    assert!(
        lines.contains(&line_of(src, "use std::sync::mpsc::channel")),
        "missing mpsc import finding: {violations:?}"
    );
    assert!(
        lines.contains(&line_of(src, "Mutex::new")),
        "missing Mutex finding: {violations:?}"
    );
    assert!(
        lines.contains(&line_of(src, "thread::spawn")),
        "missing thread::spawn finding: {violations:?}"
    );
    // The identical source inside the shard-runner module is exempt — the
    // carve-out is scoped to the one file whose protocol proves
    // thread-invariance, exactly like ambient-env's bin/ boundary.
    let as_runner = check_source(
        Path::new("crates/simcore/src/shard_runner.rs"),
        src,
        FileOptions::for_path(Path::new("crates/simcore/src/shard_runner.rs")),
    );
    assert_eq!(
        as_runner,
        vec![],
        "shard_runner.rs owns within-run threading"
    );
}

#[test]
fn annotated_fixture_passes() {
    let src = include_str!("fixtures/allowed_annotated.rs");
    let violations = check("allowed_annotated.rs", src);
    assert_eq!(violations, vec![], "reasoned allows must suppress");
}

#[test]
fn allow_without_reason_fails_twice() {
    let src = include_str!("fixtures/allow_without_reason.rs");
    let violations = check("allow_without_reason.rs", src);
    // The malformed directive is a finding...
    assert_eq!(
        lines_for(&violations, Lint::MalformedAllow),
        vec![line_of(src, "edgelint: allow(det-collections)")],
        "{violations:?}"
    );
    // ...and it does NOT silence the underlying violation.
    assert_eq!(
        lines_for(&violations, Lint::DetCollections),
        vec![line_of(src, "self.seen.iter()")],
        "{violations:?}"
    );
}

/// The acceptance gate in library form: the workspace's own determinism
/// crates must be clean. (CI also runs the `edgelint` binary; this keeps
/// `cargo test` sufficient locally.)
#[test]
fn workspace_is_clean() {
    // crates/edgelint/tests -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let violations = edgelint::check_workspace(root).expect("walk workspace");
    assert_eq!(
        violations,
        vec![],
        "unannotated determinism violations in the workspace"
    );
}
