//! `edgelint` CLI — lint the workspace's simulation crates for ambient
//! nondeterminism. Exit code 1 when any unannotated violation remains, so
//! CI can gate on it (`cargo run -p edgelint --release`). The same pass is
//! reachable as `edgesim lint`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  edgelint [--root <workspace-dir>]   lint the determinism crates
  edgelint --list                     print the lint taxonomy";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("edgelint: --root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                root = PathBuf::from(dir);
                i += 2;
            }
            "--list" => {
                print_taxonomy();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("edgelint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    run(&root)
}

fn print_taxonomy() {
    for lint in edgelint::Lint::ALL {
        println!("{}\n    {}\n", lint.name(), lint.rationale());
    }
}

/// Shared driver, also called by `edgesim lint`.
pub fn run(root: &Path) -> ExitCode {
    let violations = match edgelint::check_workspace(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("edgelint: {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "edgelint: clean ({} crates checked)",
            edgelint::DETERMINISM_CRATES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "edgelint: {} violation(s); annotate provably-safe sites with \
             `// edgelint: allow(<lint>) — <reason>`",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
