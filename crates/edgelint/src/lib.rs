//! `edgelint` — the workspace determinism linter.
//!
//! Every correctness gate in this repository (the pinned seed-42 metrics
//! hash, mesh shards=1 byte-identity, the lockstep proptests, the bench CI
//! gates) rests on one contract: **a simulation run is a pure function of
//! its scenario and seed**. Nothing may read ambient process state in a
//! trace-affecting path. This crate enforces that contract statically, with
//! a token-level analysis over the simulation crates (the build container
//! has no registry access, so instead of `syn` the pass runs on the small
//! in-tree lexer in [`lexer`]).
//!
//! The lint taxonomy (see `DESIGN.md` §5h for the full rationale):
//!
//! * **det-collections** — iteration (`iter`, `keys`, `values`, `drain`,
//!   `retain`, `into_iter`, `for .. in`) over a `HashMap`/`HashSet`.
//!   `std`'s hash maps are seeded per process (`RandomState`), so their
//!   iteration order differs run to run; any such order reaching a trace,
//!   an event schedule, or an RNG call sequence breaks replay. Fix: use
//!   `BTreeMap`/`BTreeSet`, collect-and-sort, or an order-insensitive
//!   reduction (`.values().min()`, `.iter().any(..)`, a `collect` into a
//!   `BTreeMap`/`BTreeSet`/`BinaryHeap` — those the lint recognizes itself).
//! * **ambient-time** — `Instant`/`SystemTime`/`thread::sleep`. Wall-clock
//!   reads differ per run by construction; simulation code must use
//!   `SimTime` from the event loop.
//! * **ambient-rng** — `thread_rng`, `rand::random`, `RandomState`, `OsRng`,
//!   `from_entropy`. All randomness must flow from the scenario-seeded
//!   `SimRng` streams.
//! * **ambient-env** — `std::env` reads (`var`, `args`, ...) outside
//!   bin/config code. Environment-dependent behaviour makes two hosts
//!   replay differently.
//! * **float-order** — `.partial_cmp(..).unwrap()` (usually inside
//!   `sort_by`). Besides the NaN panic, `partial_cmp` invites ad-hoc
//!   fallback orderings that differ between call sites; `f64::total_cmp`
//!   is the one total order.
//! * **threading** — `thread::spawn` and the `std::sync` coordination
//!   primitives (`Mutex`/`RwLock`/`Condvar`/`Barrier`/`mpsc`/`Atomic*`).
//!   Within-run parallelism is confined to the conservative-window protocol
//!   in `simcore::shard_runner` (a scoped carve-out, like ambient-env's
//!   `bin/`): anywhere else, a lock or channel is an invitation to make the
//!   trace depend on the thread schedule. `Arc` is deliberately exempt —
//!   immutable sharing cannot reorder anything.
//!
//! Escape hatch: a finding that is provably order-insensitive (or
//! deliberately ambient, e.g. wall-clock in a bench harness) is silenced
//! with a scoped comment **that must carry a reason**:
//!
//! ```text
//! // edgelint: allow(det-collections) — diagnostics-only iterator, never traced
//! pub fn iter(&self) -> impl Iterator<Item = &Flow> { self.flows.values() }
//! ```
//!
//! A reason-less `allow` is itself a violation (**malformed-allow**), so the
//! escape hatch cannot erode silently. The directive scopes to its own line
//! or, when alone on a line, to the next code line.

pub mod lexer;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, AllowDirective, Lexed, Token, TokenKind};

/// The named lints. `MalformedAllow` polices the escape hatch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    DetCollections,
    AmbientTime,
    AmbientRng,
    AmbientEnv,
    FloatOrder,
    Threading,
    MalformedAllow,
}

impl Lint {
    pub const ALL: [Lint; 7] = [
        Lint::DetCollections,
        Lint::AmbientTime,
        Lint::AmbientRng,
        Lint::AmbientEnv,
        Lint::FloatOrder,
        Lint::Threading,
        Lint::MalformedAllow,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Lint::DetCollections => "det-collections",
            Lint::AmbientTime => "ambient-time",
            Lint::AmbientRng => "ambient-rng",
            Lint::AmbientEnv => "ambient-env",
            Lint::FloatOrder => "float-order",
            Lint::Threading => "threading",
            Lint::MalformedAllow => "malformed-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// Why the pattern breaks deterministic replay.
    pub fn rationale(self) -> &'static str {
        match self {
            Lint::DetCollections => {
                "std::collections::HashMap/HashSet iteration order is seeded per process \
                 (RandomState); any order-dependent use in a trace-affecting path replays \
                 differently run to run. Use BTreeMap/BTreeSet, a sorted collect, or an \
                 order-insensitive reduction (min/max/sum/count/any/all)."
            }
            Lint::AmbientTime => {
                "Instant::now/SystemTime/thread::sleep read the host clock; simulation \
                 time must come from the event loop (SimTime), never the wall clock."
            }
            Lint::AmbientRng => {
                "thread_rng/rand::random/RandomState/OsRng/from_entropy draw from process \
                 entropy; all randomness must flow from the scenario-seeded SimRng streams."
            }
            Lint::AmbientEnv => {
                "std::env reads make behaviour depend on the invoking shell; only bin/config \
                 code may read the environment, and it must fold the result into the scenario."
            }
            Lint::FloatOrder => {
                "partial_cmp().unwrap() panics on NaN and invites per-call-site fallback \
                 orderings; float keys must be ordered with total_cmp (one total order)."
            }
            Lint::Threading => {
                "thread::spawn and std::sync coordination primitives make results depend on \
                 the thread schedule; within-run parallelism is confined to the windowed \
                 barrier protocol in simcore::shard_runner, which proves thread-invariance."
            }
            Lint::MalformedAllow => {
                "every `edgelint: allow(<lint>)` must name a known lint and carry a reason \
                 after `—`/`--`/`:` — an unexplained suppression is indistinguishable from \
                 an accidental one."
            }
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, with file:line provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: Lint,
    pub file: PathBuf,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Per-file analysis options.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileOptions {
    /// Bin / config code may read `std::env` (the CLI folds flags and
    /// environment into the scenario; everything downstream is pure).
    pub allow_env: bool,
    /// The shard-runner module owns within-run threading: it spawns the
    /// worker threads and the barrier channels whose merge order is proven
    /// thread-invariant. Everywhere else, thread primitives are findings.
    pub allow_threading: bool,
}

impl FileOptions {
    /// Derive options from a path: files under a `bin/` directory, `main.rs`
    /// and `config.rs` are the designated ambient-env boundary, and
    /// `shard_runner.rs` is the designated within-run threading boundary.
    pub fn for_path(path: &Path) -> FileOptions {
        let in_bin = path
            .components()
            .any(|c| c.as_os_str().to_str() == Some("bin"));
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        FileOptions {
            allow_env: in_bin || name == "main.rs" || name == "config.rs",
            allow_threading: name == "shard_runner.rs",
        }
    }
}

/// The crates whose `src/` trees carry the determinism contract. `bench`
/// (wall-clock measurement is its job) and the offline dependency shims are
/// deliberately out of scope.
pub const DETERMINISM_CRATES: [&str; 8] = [
    "cluster",
    "edgectl",
    "edgemesh",
    "edgeverify",
    "simcore",
    "simnet",
    "testbed",
    "workload",
];

/// Lint every `src/` file of the determinism crates under `root` (the
/// workspace directory). Returns violations sorted by (file, line, lint).
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for krate in DETERMINISM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            // Report paths relative to the workspace root — stable across
            // checkouts, clickable in CI logs.
            let label = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            violations.extend(check_source(&label, &source, FileOptions::for_path(&file)));
        }
    }
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.lint)
            .cmp(&(&b.file, b.line, b.lint))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    // read_dir order is filesystem-dependent; the caller sorts the result.
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint a single file's source text.
pub fn check_source(file: &Path, source: &str, opts: FileOptions) -> Vec<Violation> {
    let lexed = lex(source);
    let skip = test_regions(&lexed.tokens);
    let hash_names = hash_collection_names(&lexed.tokens, &skip);

    let mut raw = Vec::new();
    check_det_collections(&lexed.tokens, &skip, &hash_names, &mut raw);
    check_ambient(&lexed.tokens, &skip, opts, &mut raw);
    check_float_order(&lexed.tokens, &skip, &mut raw);
    check_threading(&lexed.tokens, &skip, opts, &mut raw);

    let mut out = Vec::new();
    for (lint, line, message) in raw {
        if !is_allowed(&lexed, lint, line) {
            out.push(Violation {
                lint,
                file: file.to_path_buf(),
                line,
                message,
            });
        }
    }
    for d in &lexed.allows {
        if let Some(msg) = malformed_allow(d) {
            out.push(Violation {
                lint: Lint::MalformedAllow,
                file: file.to_path_buf(),
                line: d.line,
                message: msg,
            });
        }
    }
    out.sort_by_key(|v| (v.line, v.lint));
    out
}

fn malformed_allow(d: &AllowDirective) -> Option<String> {
    if d.lint.is_empty() {
        return Some("`edgelint: allow` needs a lint name in parentheses".into());
    }
    let Some(lint) = Lint::from_name(&d.lint) else {
        return Some(format!(
            "`edgelint: allow({})` names an unknown lint (known: {})",
            d.lint,
            Lint::ALL.map(Lint::name).join(", ")
        ));
    };
    if !d.has_separator || d.reason.is_empty() {
        return Some(format!(
            "`edgelint: allow({})` needs a reason: `// edgelint: allow({}) — <why this \
             is deterministic>`",
            lint, lint
        ));
    }
    None
}

/// A directive silences a finding on its own line, or — when it sits on a
/// comment-only line — on the next code line (intervening blank/comment
/// lines are fine, so a directive can head a doc-commented item).
fn is_allowed(lexed: &Lexed, lint: Lint, line: u32) -> bool {
    lexed.allows.iter().any(|d| {
        if Lint::from_name(&d.lint) != Some(lint) || !d.has_separator || d.reason.is_empty() {
            return false;
        }
        if d.line == line {
            return true;
        }
        d.line < line
            && !lexed.line_has_code(d.line)
            && (d.line + 1..line).all(|l| !lexed.line_has_code(l))
    })
}

/// Token index ranges covered by `#[cfg(test)]` items. Test code may be as
/// ambient as it likes — it never feeds a shipped trace.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].kind.is_punct('#')
            && tokens[i + 1].kind.is_punct('[')
            && tokens[i + 2].kind.ident() == Some("cfg")
            && tokens[i + 3].kind.is_punct('(')
            && tokens[i + 4].kind.ident() == Some("test")
            && tokens[i + 5].kind.is_punct(')')
            && tokens[i + 6].kind.is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip from the attribute through the end of the annotated item:
        // either the matching `}` of its first brace block, or a `;`.
        let start = i;
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut entered = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                    entered = true;
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if !entered => break,
                _ => {}
            }
            j += 1;
        }
        for slot in skip.iter_mut().take((j + 1).min(tokens.len())).skip(start) {
            *slot = true;
        }
        i = j + 1;
    }
    skip
}

/// Names declared (as fields, params, or `let` bindings) with a
/// `HashMap`/`HashSet` type in this file.
fn hash_collection_names(tokens: &[Token], skip: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        let Some(name) = tokens[i].kind.ident() else {
            continue;
        };
        // `let [mut] name = HashMap::new()` / `= std::collections::HashSet::..`.
        if name == "let" {
            let mut j = i + 1;
            if tokens.get(j).and_then(|t| t.kind.ident()) == Some("mut") {
                j += 1;
            }
            let Some(bound) = tokens.get(j).and_then(|t| t.kind.ident()) else {
                continue;
            };
            if !tokens.get(j + 1).is_some_and(|t| t.kind.is_punct('=')) {
                continue;
            }
            let mut k = j + 2;
            // Skip a leading `std :: collections ::` path prefix.
            while matches!(
                tokens.get(k).and_then(|t| t.kind.ident()),
                Some("std") | Some("collections")
            ) && tokens.get(k + 1).is_some_and(|t| t.kind.is_punct(':'))
            {
                k += 3; // ident : :
            }
            if matches!(
                tokens.get(k).and_then(|t| t.kind.ident()),
                Some("HashMap") | Some("HashSet")
            ) {
                push(bound);
            }
            continue;
        }
        if matches!(
            name,
            "mut" | "pub" | "fn" | "if" | "else" | "match" | "return" | "self"
        ) {
            continue;
        }
        // `name : <type containing HashMap/HashSet>` — field, param, or
        // typed binding. Require a single `:` (not `::`).
        let colon = i + 1 < tokens.len()
            && tokens[i + 1].kind.is_punct(':')
            && tokens.get(i + 2).is_none_or(|t| !t.kind.is_punct(':'))
            && (i == 0 || !tokens[i - 1].kind.is_punct(':'));
        if colon && type_mentions_hash(&tokens[i + 2..]) {
            push(name);
        }
    }
    names
}

/// Does a type expression starting at `rest` mention HashMap/HashSet before
/// its terminator (`,`/`;`/`=`/`)`/`{`/`}` at angle depth 0)?
fn type_mentions_hash(rest: &[Token]) -> bool {
    let mut angle = 0i32;
    for t in rest.iter().take(48) {
        match &t.kind {
            TokenKind::Ident(s) if s == "HashMap" || s == "HashSet" => return true,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = (angle - 1).max(0),
            TokenKind::Punct(',' | ';' | '=' | ')' | '{' | '}') if angle == 0 => return false,
            _ => {}
        }
    }
    false
}

const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Chain adapters that preserve the order question (the terminal decides).
const PASSTHROUGH: [&str; 7] = [
    "copied",
    "cloned",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
];

/// Order-insensitive terminal reductions (commutative folds). `min_by_key`
/// and friends are deliberately absent: ties break by position.
const REDUCERS: [&str; 7] = ["min", "max", "sum", "product", "count", "any", "all"];

/// Order-insensitive `collect` destinations: the result re-sorts (B-trees)
/// or orders only by key (heap), so hash order never escapes.
const SORTED_COLLECTS: [&str; 3] = ["BTreeMap", "BTreeSet", "BinaryHeap"];

fn check_det_collections(
    tokens: &[Token],
    skip: &[bool],
    hash_names: &[String],
    out: &mut Vec<(Lint, u32, String)>,
) {
    let is_hash = |i: usize| {
        tokens
            .get(i)
            .and_then(|t| t.kind.ident())
            .is_some_and(|n| hash_names.iter().any(|h| h == n))
    };
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        // `recv.method(..)` where recv is a known hash collection.
        if is_hash(i)
            && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('.'))
            && tokens.get(i + 3).is_some_and(|t| t.kind.is_punct('('))
        {
            let Some(method) = tokens.get(i + 2).and_then(|t| t.kind.ident()) else {
                continue;
            };
            if !ITER_METHODS.contains(&method) {
                continue;
            }
            let name = tokens[i].kind.ident().unwrap_or_default();
            let line = tokens[i + 2].line;
            if matches!(method, "drain" | "retain" | "extract_if") {
                out.push((
                    Lint::DetCollections,
                    line,
                    format!(
                        "`{name}.{method}(..)` visits a HashMap/HashSet in hash order; \
                         migrate `{name}` to a BTree collection or restructure"
                    ),
                ));
                continue;
            }
            if !chain_is_order_insensitive(tokens, i + 3) {
                out.push((
                    Lint::DetCollections,
                    line,
                    format!(
                        "iteration over HashMap/HashSet `{name}` (via `.{method}()`) is \
                         hash-ordered; use a BTree collection, a sorted collect, or an \
                         order-insensitive reduction"
                    ),
                ));
            }
            continue;
        }
        // `for pat in [&[mut]] [self.]name {` — bare loop over the map.
        if tokens[i].kind.ident() == Some("for") {
            let Some(in_idx) =
                (i + 1..(i + 24).min(tokens.len())).find(|&j| tokens[j].kind.ident() == Some("in"))
            else {
                continue;
            };
            let Some(brace) = (in_idx + 1..(in_idx + 12).min(tokens.len()))
                .find(|&j| tokens[j].kind.is_punct('{'))
            else {
                continue;
            };
            let expr = &tokens[in_idx + 1..brace];
            // Only a bare `name` / `&name` / `&mut name` / `self.name` — any
            // method call in the expression is handled by the receiver rule.
            let non_trivial = expr.iter().any(|t| match &t.kind {
                TokenKind::Punct('&' | '.') => false,
                TokenKind::Punct(_) => true,
                TokenKind::Ident(s) => {
                    s != "self" && s != "mut" && !hash_names.iter().any(|h| h == s)
                }
                _ => true,
            });
            let names_hash = expr.iter().any(|t| {
                t.kind
                    .ident()
                    .is_some_and(|n| hash_names.iter().any(|h| h == n))
            });
            if names_hash && !non_trivial {
                let name = expr
                    .iter()
                    .filter_map(|t| t.kind.ident())
                    .next_back()
                    .unwrap_or_default();
                out.push((
                    Lint::DetCollections,
                    tokens[i].line,
                    format!(
                        "`for .. in {name}` iterates a HashMap/HashSet in hash order; \
                         use a BTree collection or iterate a sorted copy"
                    ),
                ));
            }
        }
    }
}

/// Walk the method chain after an iteration call (starting at its opening
/// paren) and decide whether it ends in an order-insensitive reduction.
fn chain_is_order_insensitive(tokens: &[Token], mut open: usize) -> bool {
    loop {
        let Some(close) = skip_balanced(tokens, open) else {
            return false;
        };
        let Some(dot) = tokens.get(close + 1) else {
            return false; // chain ends right after the call: raw iterator
        };
        if !dot.kind.is_punct('.') {
            return false;
        }
        let Some(method) = tokens.get(close + 2).and_then(|t| t.kind.ident()) else {
            return false;
        };
        if REDUCERS.contains(&method) {
            return true;
        }
        if method == "collect" {
            // `.collect::<BTreeMap<..>>()` / turbofish-free collect into an
            // inferred B-tree we cannot see — only the explicit form passes.
            let mut j = close + 3;
            if tokens.get(j).is_some_and(|t| t.kind.is_punct(':'))
                && tokens.get(j + 1).is_some_and(|t| t.kind.is_punct(':'))
            {
                j += 2;
                if tokens.get(j).is_some_and(|t| t.kind.is_punct('<')) {
                    return tokens
                        .get(j + 1)
                        .and_then(|t| t.kind.ident())
                        .is_some_and(|t| SORTED_COLLECTS.contains(&t));
                }
            }
            return false;
        }
        if !PASSTHROUGH.contains(&method) {
            return false;
        }
        // Advance past this adapter's argument list.
        let Some(next_open) = tokens.get(close + 3) else {
            return false;
        };
        if !next_open.kind.is_punct('(') {
            return false;
        }
        open = close + 3;
    }
}

/// Given the index of an opening `(`/`[`/`{`, return the index of its
/// matching closer (tracking all three bracket kinds together).
fn skip_balanced(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_ambient(
    tokens: &[Token],
    skip: &[bool],
    opts: FileOptions,
    out: &mut Vec<(Lint, u32, String)>,
) {
    let path_next = |i: usize, want: &str| {
        tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            && tokens.get(i + 3).and_then(|t| t.kind.ident()) == Some(want)
    };
    const ENV_READS: [&str; 8] = [
        "var",
        "var_os",
        "vars",
        "vars_os",
        "args",
        "args_os",
        "current_dir",
        "temp_dir",
    ];
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        let Some(name) = tokens[i].kind.ident() else {
            continue;
        };
        let line = tokens[i].line;
        match name {
            "Instant" | "SystemTime" => {
                // The type alone is flagged: storing a wall-clock stamp is
                // already ambient state, whoever read it.
                out.push((
                    Lint::AmbientTime,
                    line,
                    format!("`{name}` is wall-clock time; simulation code must use SimTime"),
                ));
            }
            "thread" if path_next(i, "sleep") => {
                out.push((
                    Lint::AmbientTime,
                    line,
                    "`thread::sleep` blocks on the host clock; schedule a SimTime event instead"
                        .into(),
                ));
            }
            "thread_rng" | "RandomState" | "OsRng" | "from_entropy" | "getrandom" => {
                out.push((
                    Lint::AmbientRng,
                    line,
                    format!("`{name}` draws process entropy; use the scenario-seeded SimRng"),
                ));
            }
            "rand" if path_next(i, "random") => {
                out.push((
                    Lint::AmbientRng,
                    line,
                    "`rand::random` draws process entropy; use the scenario-seeded SimRng".into(),
                ));
            }
            "env"
                if !opts.allow_env
                    && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':')) =>
            {
                if let Some(read) = tokens.get(i + 3).and_then(|t| t.kind.ident()) {
                    if ENV_READS.contains(&read) {
                        out.push((
                            Lint::AmbientEnv,
                            line,
                            format!(
                                "`env::{read}` read outside bin/config code; fold the \
                                 value into the scenario at the CLI boundary"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// `std::sync` coordination types whose mere presence is a finding. `Arc`
/// is absent on purpose: immutable sharing has no schedule-visible order.
/// `Sender`/`Receiver` are also absent (too generic a name); the `mpsc`
/// path segment they are imported through is flagged instead.
const SYNC_PRIMITIVES: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "JoinHandle",
    "mpsc",
];

fn check_threading(
    tokens: &[Token],
    skip: &[bool],
    opts: FileOptions,
    out: &mut Vec<(Lint, u32, String)>,
) {
    if opts.allow_threading {
        return;
    }
    let path_next = |i: usize, want: &str| {
        tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            && tokens.get(i + 3).and_then(|t| t.kind.ident()) == Some(want)
    };
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        let Some(name) = tokens[i].kind.ident() else {
            continue;
        };
        let line = tokens[i].line;
        if name == "thread" {
            for spawn in ["spawn", "scope", "Builder"] {
                if path_next(i, spawn) {
                    out.push((
                        Lint::Threading,
                        line,
                        format!(
                            "`thread::{spawn}` outside the shard-runner module; within-run \
                             workers belong to simcore::shard_runner's window protocol"
                        ),
                    ));
                }
            }
        } else if SYNC_PRIMITIVES.contains(&name) || name.starts_with("Atomic") {
            out.push((
                Lint::Threading,
                line,
                format!(
                    "`{name}` is a cross-thread coordination primitive; outside \
                     simcore::shard_runner it invites schedule-dependent results"
                ),
            ));
        }
    }
}

fn check_float_order(tokens: &[Token], skip: &[bool], out: &mut Vec<(Lint, u32, String)>) {
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        if tokens[i].kind.ident() != Some("partial_cmp") {
            continue;
        }
        // Only calls (`.partial_cmp(..)`) — a `fn partial_cmp` definition in
        // a PartialOrd impl is fine.
        if i == 0 || !tokens[i - 1].kind.is_punct('.') {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            continue;
        };
        if !open.kind.is_punct('(') {
            continue;
        }
        let Some(close) = skip_balanced(tokens, i + 1) else {
            continue;
        };
        if tokens.get(close + 1).is_some_and(|t| t.kind.is_punct('.')) {
            if let Some(next) = tokens.get(close + 2).and_then(|t| t.kind.ident()) {
                if next == "unwrap" || next == "expect" {
                    out.push((
                        Lint::FloatOrder,
                        tokens[i].line,
                        format!(
                            "`.partial_cmp(..).{next}(..)` — order floats with \
                             `total_cmp` (total, NaN-safe) instead"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_source(Path::new("test.rs"), src, FileOptions::default())
    }

    fn lints(src: &str) -> Vec<Lint> {
        check(src).into_iter().map(|v| v.lint).collect()
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> Vec<u32> { self.m.values().copied().collect() } }\n";
        assert_eq!(lints(src), vec![Lint::DetCollections]);
        assert_eq!(check(src)[0].line, 2);
    }

    #[test]
    fn order_insensitive_reductions_pass() {
        for chain in [
            "self.m.values().min()",
            "self.m.values().copied().max()",
            "self.m.iter().any(|(_, v)| *v > 3)",
            "self.m.keys().count()",
            "self.m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, u32>>()",
            "self.m.get(&1)",
            "self.m.len()",
        ] {
            let src = format!(
                "struct S {{ m: HashMap<u32, u32> }}\n\
                 impl S {{ fn f(&self) {{ let _ = {chain}; }} }}\n"
            );
            assert_eq!(lints(&src), vec![], "{chain}");
        }
    }

    #[test]
    fn drain_retain_and_for_loops_flagged() {
        for stmt in [
            "self.m.retain(|_, v| *v > 0)",
            "self.m.drain()",
            "for (_k, _v) in &self.m {}",
        ] {
            let src = format!(
                "struct S {{ m: HashMap<u32, u32> }}\n\
                 impl S {{ fn f(&mut self) {{ {stmt}; }} }}\n"
            );
            assert_eq!(lints(&src), vec![Lint::DetCollections], "{stmt}");
        }
    }

    #[test]
    fn let_binding_tracked() {
        let src = "fn f() { let mut seen = HashSet::new(); for x in &seen {} }\n";
        assert_eq!(lints(src), vec![Lint::DetCollections]);
    }

    #[test]
    fn btreemap_not_flagged() {
        let src = "struct S { m: BTreeMap<u32, u32> }\n\
                   impl S { fn f(&self) { for (_k, _v) in &self.m {} } }\n";
        assert_eq!(lints(src), vec![]);
    }

    #[test]
    fn ambient_lints_fire() {
        assert_eq!(
            lints("fn f() { let t = Instant::now(); }"),
            vec![Lint::AmbientTime]
        );
        assert_eq!(
            lints("fn f() { let r = thread_rng(); }"),
            vec![Lint::AmbientRng]
        );
        assert_eq!(
            lints("fn f() { let v = std::env::var(\"X\"); }"),
            vec![Lint::AmbientEnv]
        );
        assert_eq!(
            lints("fn f(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
            vec![Lint::FloatOrder]
        );
    }

    #[test]
    fn threading_primitives_flagged() {
        for stmt in [
            "let h = thread::spawn(|| 1)",
            "let m = Mutex::new(0)",
            "let l = RwLock::new(0)",
            "let c = Condvar::new()",
            "let b = Barrier::new(2)",
            "let (tx, rx) = std::sync::mpsc::channel::<u64>()",
            "let n = AtomicUsize::new(0)",
        ] {
            let src = format!("fn f() {{ {stmt}; }}\n");
            assert_eq!(lints(&src), vec![Lint::Threading], "{stmt}");
        }
    }

    #[test]
    fn arc_is_not_a_threading_finding() {
        assert_eq!(
            lints("fn f() { let a = Arc::new(1); let b = Arc::clone(&a); }"),
            vec![]
        );
        // `thread::current` is an identity read, not a spawn.
        assert_eq!(lints("fn f() { let _ = thread::current(); }"), vec![]);
    }

    #[test]
    fn threading_allowed_in_shard_runner_module() {
        let path = Path::new("crates/simcore/src/shard_runner.rs");
        let src = "use std::sync::mpsc::channel;\n\
                   fn f() { let h = thread::spawn(|| 1); h.join().unwrap(); }\n";
        assert_eq!(check_source(path, src, FileOptions::for_path(path)), vec![]);
        // The same source anywhere else is a finding per primitive.
        let got = lints(src);
        assert_eq!(got, vec![Lint::Threading, Lint::Threading], "{got:?}");
    }

    #[test]
    fn env_allowed_in_bin_code() {
        let v = check_source(
            Path::new("src/bin/tool.rs"),
            "fn main() { let _ = std::env::args(); }",
            FileOptions::for_path(Path::new("src/bin/tool.rs")),
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn cfg_test_regions_exempt() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { let t = Instant::now(); let r = thread_rng(); }\n\
                   }\n";
        assert_eq!(lints(src), vec![]);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                       // edgelint: allow(det-collections) — diagnostics only, never traced\n\
                       fn f(&self) -> Vec<u32> { self.m.values().copied().collect() }\n\
                   }\n";
        assert_eq!(lints(src), vec![]);
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                       // edgelint: allow(det-collections)\n\
                       fn f(&self) -> Vec<u32> { self.m.values().copied().collect() }\n\
                   }\n";
        let got = lints(src);
        assert!(got.contains(&Lint::MalformedAllow), "{got:?}");
        assert!(got.contains(&Lint::DetCollections), "{got:?}");
    }

    #[test]
    fn allow_unknown_lint_is_malformed() {
        let src = "// edgelint: allow(det-colections) — typo\nfn f() {}\n";
        assert_eq!(lints(src), vec![Lint::MalformedAllow]);
    }

    #[test]
    fn partial_cmp_impl_not_flagged() {
        let src = "impl PartialOrd for S {\n\
                   fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n\
                   }\n";
        assert_eq!(lints(src), vec![]);
    }
}
