//! A minimal Rust lexer — just enough structure for the determinism lints.
//!
//! The build container has no registry access, so `syn` is not available;
//! like the `proptest`/`criterion` shims, the lexer is vendored in-tree. It
//! produces a flat token stream with line provenance plus the comment-borne
//! side channels the lints need: `// edgelint: allow(...)` directives and a
//! per-line "has code" map (so a directive on its own line can be scoped to
//! the next statement). It understands the lexical constructs that would
//! otherwise corrupt a token scan — nested block comments, string/char/byte
//! literals, raw strings with `#` fences, and lifetimes vs. char literals —
//! and deliberately nothing more: the lints pattern-match on token
//! neighborhoods, not on a parse tree.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub kind: TokenKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `self`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `(`, `<`, ...). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:`,`:`).
    Punct(char),
    /// String / char / numeric literal (contents dropped — no lint reads them).
    Literal,
    /// `'a` — kept distinct so `'x'` char literals never masquerade as idents.
    Lifetime,
}

impl TokenKind {
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A `// edgelint: allow(<lint>) — <reason>` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    pub line: u32,
    /// The raw lint name inside the parentheses (validated by the caller).
    pub lint: String,
    /// The reason text after the separator, trimmed. Empty = malformed.
    pub reason: String,
    /// Whether a separator (`—`, `--`, or `:`) was present at all.
    pub has_separator: bool,
}

/// Lexer output: the token stream plus the comment side channels.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    /// `code_lines[n]` is true when 1-based line `n+1` holds at least one
    /// token (i.e. is not blank / comment-only). Used to scope directives.
    pub code_lines: Vec<bool>,
}

impl Lexed {
    pub fn line_has_code(&self, line: u32) -> bool {
        self.code_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }
}

pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed {
        code_lines: vec![false; source.lines().count().max(1)],
        ..Lexed::default()
    };
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {{
            if let Some(slot) = out.code_lines.get_mut(line as usize - 1) {
                *slot = true;
            }
            out.tokens.push(Token { line, kind: $kind });
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map_or(bytes.len(), |n| i + n);
                scan_comment(&source[i..end], line, &mut out.allows);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, counting newlines as we go.
                let mut depth = 1;
                let start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                scan_comment(&source[start..i.min(bytes.len())], line, &mut out.allows);
            }
            '"' => {
                push!(TokenKind::Literal);
                i = skip_string(bytes, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                push!(TokenKind::Literal);
                i = skip_raw_or_byte_string(bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a` not followed by a closing quote) vs char
                // literal (`'a'`, `'\n'`, `'\''`).
                let next = bytes.get(i + 1).copied();
                let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    push!(TokenKind::Lifetime);
                    i += 2;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                } else {
                    push!(TokenKind::Literal);
                    i = skip_char_literal(bytes, i);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push!(TokenKind::Ident(source[start..i].to_string()));
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits, `_`, `.` (float), exponent, suffix.
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
                    {
                        i += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E'))
                        && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        i += 1; // exponent sign (`1.5e-3`)
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Literal);
            }
            c => {
                push!(TokenKind::Punct(c));
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Parse `edgelint: allow(<lint>)` directives out of one comment's text.
fn scan_comment(text: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    let Some(pos) = text.find("edgelint:") else {
        return;
    };
    let rest = text[pos + "edgelint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        allows.push(AllowDirective {
            line,
            lint: String::new(),
            reason: String::new(),
            has_separator: false,
        });
        return;
    };
    let Some(close) = rest.find(')') else {
        allows.push(AllowDirective {
            line,
            lint: String::new(),
            reason: String::new(),
            has_separator: false,
        });
        return;
    };
    let lint = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    // Accept `— reason`, `-- reason`, or `: reason`.
    let (has_separator, reason) = if let Some(r) = tail.strip_prefix('—') {
        (true, r.trim())
    } else if let Some(r) = tail.strip_prefix("--") {
        (true, r.trim())
    } else if let Some(r) = tail.strip_prefix(':') {
        (true, r.trim())
    } else {
        (false, "")
    };
    allows.push(AllowDirective {
        line,
        lint,
        reason: reason.trim_end_matches("*/").trim().to_string(),
        has_separator,
    });
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        // Plain byte string: escapes apply.
        return skip_string(bytes, i, line);
    }
    // Raw string: r, then zero or more '#', then '"'.
    i += 1; // 'r'
    let mut fence = 0usize;
    while bytes.get(i) == Some(&b'#') {
        fence += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a string (e.g. `r#ident`); resync
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < fence && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == fence {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        i += 1;
    }
    // Unicode escapes (`'\u{1F600}'`) run until the closing quote.
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
let x = "HashMap::new() // not code";
/* Instant::now() in a block comment
   spanning lines */
let r = r#"thread_rng() "quoted" "#;
let c = '\''; let lt: &'static str = "s";
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()), "{ids:?}");
        // `'static` arrives as a Lifetime token, never as an ident.
        assert!(!ids.contains(&"static".to_string()), "{ids:?}");
        assert!(lex(src)
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("b"))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn allow_directive_parses() {
        let src =
            "// edgelint: allow(det-collections) — values feed a min() reduction\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let d = &lexed.allows[0];
        assert_eq!(d.lint, "det-collections");
        assert!(d.has_separator);
        assert_eq!(d.reason, "values feed a min() reduction");
        assert!(!lexed.line_has_code(1));
        assert!(lexed.line_has_code(2));
    }

    #[test]
    fn allow_directive_without_reason_flagged() {
        for src in [
            "// edgelint: allow(ambient-time)\n",
            "// edgelint: allow(ambient-time) —\n",
            "// edgelint: allow(ambient-time) --   \n",
        ] {
            let lexed = lex(src);
            assert_eq!(lexed.allows.len(), 1, "{src}");
            let d = &lexed.allows[0];
            assert!(d.reason.is_empty(), "{src}");
        }
    }

    #[test]
    fn numeric_float_is_one_literal() {
        let lexed = lex("let x = 1.5e-3_f64;");
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 1);
    }
}
