//! Self-healing comparison (supports the paper's §VII argument for keeping
//! Kubernetes despite its slow starts: "Kubernetes provides us with
//! automated management"): after a container crash, K8s recovers on its own
//! while plain Docker stays down until the controller intervenes; the wasm
//! gateway re-instantiates in milliseconds.

use cluster::{ClusterBackend, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::IpAddr;

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 10_000_000, 3),
    ));
    hub.publish(ImageManifest::new(
        "edge/web.wasm",
        synthesize_layers(2, 3 << 20, 1),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn deploy(backend: &mut dyn ClusterBackend, tpl: &ServiceTemplate) -> SimTime {
    let regs = registries();
    let t = backend.pull(SimTime::ZERO, tpl, &regs).unwrap();
    let t = backend.create(t, tpl).unwrap();
    backend.scale_up(t, &tpl.name, 1).unwrap().expected_ready + SimDuration::from_secs(1)
}

#[test]
fn k8s_self_heals_after_crash() {
    let rng = SimRng::seed_from_u64(1);
    let mut k8s = K8sCluster::new(
        "k",
        IpAddr::new(10, 0, 0, 2),
        Runtime::egs(rng.stream("rt")),
        rng.stream("k8s"),
        K8sTimings::egs(),
    );
    let tpl = ServiceTemplate::single("svc", "nginx:1.23.2", 80, DurationDist::constant_ms(100.0));
    let warm = deploy(&mut k8s, &tpl);
    assert!(k8s.is_ready(warm, "svc"));

    let recovered = k8s
        .inject_crash(warm, "svc")
        .recovery()
        .expect("kubelet restarts the pod");
    assert!(
        !k8s.is_ready(warm + SimDuration::from_millis(1), "svc"),
        "down right after the crash"
    );
    assert!(k8s.is_ready(recovered, "svc"), "self-healed");
    let downtime = (recovered - warm).as_millis_f64();
    // kubelet sync + container start + readiness probe + endpoints ≈ 1-3 s
    assert!(
        (500.0..5000.0).contains(&downtime),
        "k8s downtime {downtime} ms"
    );
}

#[test]
fn docker_stays_down_after_crash() {
    let rng = SimRng::seed_from_u64(2);
    let mut docker = DockerCluster::new(
        "d",
        IpAddr::new(10, 0, 0, 1),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    );
    let tpl = ServiceTemplate::single("svc", "nginx:1.23.2", 80, DurationDist::constant_ms(100.0));
    let warm = deploy(&mut docker, &tpl);
    assert!(docker.is_ready(warm, "svc"));

    let outcome = docker.inject_crash(warm, "svc");
    assert_eq!(outcome, cluster::CrashOutcome::Down, "no restart policy");
    let much_later = warm + SimDuration::from_secs(3600);
    assert!(
        !docker.is_ready(much_later, "svc"),
        "stays down without help"
    );

    // …until something scales it up again (what the controller does on the
    // next request): restart of the existing container, sub-second.
    let receipt = docker.scale_up(much_later, "svc", 1).unwrap();
    assert!(docker.is_ready(receipt.expected_ready, "svc"));
    assert!((receipt.expected_ready - much_later) < SimDuration::from_secs(1));
}

#[test]
fn wasm_reinstantiates_in_milliseconds() {
    let mut wasm = cluster::WasmEdgeCluster::new(
        "w",
        IpAddr::new(10, 0, 0, 3),
        SimRng::seed_from_u64(3),
        cluster::WasmTimings::egs(),
    );
    let tpl = ServiceTemplate::single("svc", "edge/web.wasm", 80, DurationDist::zero());
    let warm = deploy(&mut wasm, &tpl);
    let recovered = wasm
        .inject_crash(warm, "svc")
        .recovery()
        .expect("gateway re-instantiates");
    let downtime = (recovered - warm).as_millis_f64();
    assert!(downtime < 50.0, "wasm downtime {downtime} ms");
    assert!(wasm.is_ready(recovered, "svc"));
}

#[test]
fn crash_on_absent_or_idle_service_is_none() {
    let rng = SimRng::seed_from_u64(4);
    let mut docker = DockerCluster::new(
        "d",
        IpAddr::new(10, 0, 0, 1),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    );
    assert_eq!(
        docker.inject_crash(SimTime::ZERO, "ghost"),
        cluster::CrashOutcome::NoInstance
    );
}
