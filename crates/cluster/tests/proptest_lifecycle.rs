//! State-machine property tests: under arbitrary operation sequences, the
//! Docker and Kubernetes backends must never panic, must keep their status
//! consistent with a simple reference model, and time must flow forward
//! through every returned completion instant.

use cluster::{
    ClusterBackend, ClusterError, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate,
};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use proptest::prelude::*;
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::IpAddr;

#[derive(Debug, Clone)]
enum Op {
    Pull,
    Create,
    ScaleUp(u32),
    ScaleDown(u32),
    Remove,
    AdvanceSecs(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            1 => Just(Op::Pull),
            2 => Just(Op::Create),
            3 => (1u32..4).prop_map(Op::ScaleUp),
            2 => (0u32..3).prop_map(Op::ScaleDown),
            1 => Just(Op::Remove),
            3 => (1u64..30).prop_map(Op::AdvanceSecs),
        ],
        0..40,
    )
}

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 10_000_000, 3),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn template() -> ServiceTemplate {
    ServiceTemplate::single("svc", "nginx:1.23.2", 80, DurationDist::constant_ms(50.0))
}

/// Reference model of what must hold.
#[derive(Default)]
struct Model {
    pulled: bool,
    created: bool,
}

fn drive(backend: &mut dyn ClusterBackend, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let regs = registries();
    let tpl = template();
    let mut model = Model::default();
    let mut now = SimTime::ZERO;

    for op in ops {
        match op {
            Op::Pull => {
                let done = backend
                    .pull(now, &tpl, &regs)
                    .expect("pull never fails here");
                prop_assert!(done >= now, "time must not go backwards");
                now = done;
                model.pulled = true;
            }
            Op::Create => match backend.create(now, &tpl) {
                Ok(done) => {
                    prop_assert!(done >= now);
                    prop_assert!(!model.created, "create succeeded twice");
                    now = done;
                    model.created = true;
                }
                Err(ClusterError::AlreadyCreated(_)) => prop_assert!(model.created),
                Err(ClusterError::ImageNotCached(_)) => prop_assert!(!model.pulled),
                Err(e) => prop_assert!(false, "unexpected create error: {e}"),
            },
            Op::ScaleUp(n) => match backend.scale_up(now, "svc", n) {
                Ok(receipt) => {
                    prop_assert!(model.created);
                    prop_assert!(receipt.accepted_at >= now);
                    prop_assert!(receipt.expected_ready >= receipt.accepted_at);
                    now = receipt.accepted_at;
                    // at expected_ready, at least n replicas answer
                    let st = backend.status(receipt.expected_ready, "svc");
                    prop_assert!(
                        st.ready_replicas >= n.min(st.desired_replicas),
                        "ready {} < {}",
                        st.ready_replicas,
                        n
                    );
                }
                Err(ClusterError::NotCreated(_)) => prop_assert!(!model.created),
                Err(ClusterError::ImageNotCached(_)) => prop_assert!(!model.pulled),
                Err(ClusterError::InsufficientResources(_)) => {}
                Err(e) => prop_assert!(false, "unexpected scale_up error: {e}"),
            },
            Op::ScaleDown(n) => match backend.scale_down(now, "svc", n) {
                Ok(done) => {
                    prop_assert!(model.created);
                    prop_assert!(done >= now);
                    now = done;
                    let st = backend.status(now + SimDuration::from_secs(60), "svc");
                    prop_assert!(st.ready_replicas <= n.max(st.desired_replicas));
                }
                Err(ClusterError::UnknownService(_)) => prop_assert!(!model.created),
                Err(e) => prop_assert!(false, "unexpected scale_down error: {e}"),
            },
            Op::Remove => match backend.remove(now, "svc") {
                Ok(done) => {
                    prop_assert!(model.created);
                    now = done;
                    model.created = false;
                    prop_assert!(!backend.status(now, "svc").created);
                }
                Err(ClusterError::UnknownService(_)) => prop_assert!(!model.created),
                Err(e) => prop_assert!(false, "unexpected remove error: {e}"),
            },
            Op::AdvanceSecs(s) => {
                now += SimDuration::from_secs(s);
            }
        }

        // Global invariants after every step.
        let st = backend.status(now, "svc");
        prop_assert_eq!(st.created, model.created, "created flag diverged");
        if model.created {
            prop_assert!(
                st.endpoint.is_some(),
                "created service must have an endpoint"
            );
        }
        prop_assert!(backend.load() >= 0.0 && backend.load() <= 1.0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn docker_lifecycle_safe(seq in ops(), seed in 0u64..1000) {
        let rng = SimRng::seed_from_u64(seed);
        let mut backend = DockerCluster::new(
            "d",
            IpAddr::new(10, 0, 0, 1),
            Runtime::egs(rng.stream("rt")),
            rng.stream("docker"),
        );
        drive(&mut backend, seq)?;
    }

    #[test]
    fn k8s_lifecycle_safe(seq in ops(), seed in 0u64..1000) {
        let rng = SimRng::seed_from_u64(seed);
        let mut backend = K8sCluster::new(
            "k",
            IpAddr::new(10, 0, 0, 2),
            Runtime::egs(rng.stream("rt")),
            rng.stream("k8s"),
            K8sTimings::egs(),
        );
        drive(&mut backend, seq)?;
    }

    #[test]
    fn wasm_lifecycle_safe(seq in ops(), seed in 0u64..1000) {
        let rng = SimRng::seed_from_u64(seed);
        let mut backend = cluster::WasmEdgeCluster::new(
            "w",
            IpAddr::new(10, 0, 0, 3),
            rng.stream("wasm"),
            cluster::WasmTimings::egs(),
        );
        drive(&mut backend, seq)?;
    }
}
