//! Backend-neutral service templates.
//!
//! The controller's annotation engine (in `edgectl`) turns a user-provided
//! Kubernetes-style YAML definition into one of these; the same template
//! drives both the Docker and the Kubernetes backend — the paper's "it does
//! not matter whether the edge cluster is running Docker or Kubernetes – we
//! use the same service definition for both".

use containers::ImageRef;
use simcore::DurationDist;

use crate::capacity::{DeploymentRequirements, ResourceRequest};

/// One container of a service.
#[derive(Debug, Clone)]
pub struct ContainerTemplate {
    pub name: String,
    pub image: ImageRef,
    /// Time from process start until the container's port accepts
    /// connections; sampled per instance.
    pub app_init: DurationDist,
    pub cpu_millis: u32,
    pub mem_bytes: u64,
}

/// A deployable edge service: one or more containers plus the service port.
#[derive(Debug, Clone)]
pub struct ServiceTemplate {
    /// Worldwide-unique service name (the controller's annotation step
    /// guarantees uniqueness).
    pub name: String,
    pub containers: Vec<ContainerTemplate>,
    /// The port the service listens on inside its (main) container.
    pub port: u16,
    /// Custom Kubernetes scheduler to use for this service's pods
    /// (`spec.template.spec.schedulerName`, paper §V and \[26\]/\[27\]);
    /// `None` = the default kube-scheduler.
    pub scheduler_name: Option<String>,
    /// Placement constraints (affinity/anti-affinity site labels); empty by
    /// default — every site qualifies.
    pub requirements: DeploymentRequirements,
}

impl ServiceTemplate {
    /// A single-container template with sane defaults — the common case in
    /// tests and examples.
    pub fn single(
        name: impl Into<String>,
        image: impl Into<String>,
        port: u16,
        app_init: DurationDist,
    ) -> ServiceTemplate {
        let name = name.into();
        ServiceTemplate {
            containers: vec![ContainerTemplate {
                name: name.clone(),
                image: ImageRef::new(image),
                app_init,
                cpu_millis: 250,
                mem_bytes: 256 << 20,
            }],
            name,
            port,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
        }
    }

    pub fn images(&self) -> impl Iterator<Item = &ImageRef> {
        self.containers.iter().map(|c| &c.image)
    }

    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    pub fn total_cpu_millis(&self) -> u32 {
        self.containers.iter().map(|c| c.cpu_millis).sum()
    }

    pub fn total_mem_bytes(&self) -> u64 {
        self.containers.iter().map(|c| c.mem_bytes).sum()
    }

    /// The per-replica resource demand the scheduler and admission control
    /// reason about: the sum of the container requests, memory rounded up to
    /// whole MiB.
    pub fn resource_request(&self) -> ResourceRequest {
        ResourceRequest::new(
            self.total_cpu_millis(),
            self.total_mem_bytes().div_ceil(1 << 20),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_builder() {
        let t =
            ServiceTemplate::single("web", "nginx:1.23.2", 80, DurationDist::constant_ms(100.0));
        assert_eq!(t.container_count(), 1);
        assert_eq!(t.port, 80);
        assert_eq!(t.images().next().unwrap().0, "nginx:1.23.2");
        assert!(t.total_cpu_millis() > 0);
        assert!(t.total_mem_bytes() > 0);
        let req = t.resource_request();
        assert_eq!(req.cpu_millis, 250);
        assert_eq!(req.memory_mib, 256);
        assert_eq!(req.replicas, 1);
        assert!(t.requirements.is_empty());
    }
}
