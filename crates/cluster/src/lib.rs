//! # cluster — simulated edge cluster backends
//!
//! The paper evaluates on-demand deployment against two cluster types running
//! on the same Edge Gateway Server: plain **Docker** (fast, no orchestration)
//! and **Kubernetes** (slower to start instances, but self-managing). Both sit
//! on the same containerd runtime — exactly the setup in paper §VI — which the
//! [`containers`] crate provides.
//!
//! * [`template`] — backend-neutral service templates (the paper's annotated
//!   YAML definitions compile down to these),
//! * [`api`] — the [`ClusterBackend`] trait: the Pull / Create / Scale-Up /
//!   Scale-Down / Remove operations of Fig. 4 plus status queries,
//! * [`docker`] — a Docker-like engine: API call + containerd create/start;
//!   a started container's host port is connectable as soon as the app opens
//!   its port (< 1 s total, Fig. 11),
//! * [`k8s`] — a Kubernetes-like control plane: API server, Deployment →
//!   ReplicaSet → Pod fan-out through watch channels, scheduler binding,
//!   kubelet sync, sandbox + containers, readiness probes and endpoints
//!   propagation (~3 s total, Fig. 11).

pub mod api;
pub mod capacity;
pub mod docker;
pub mod faults;
pub mod k8s;
pub mod template;
pub mod wasm;

pub use api::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceSnapshot,
    ServiceStatus,
};
pub use capacity::{
    CapacityShortfall, DeploymentRequirements, ResourceAllocation, ResourceRequest, SiteCapacity,
};
pub use docker::DockerCluster;
pub use faults::{FaultPlan, FaultyCluster};
pub use k8s::{K8sCluster, K8sTimings};
pub use template::{ContainerTemplate, ServiceTemplate};
pub use wasm::{WasmEdgeCluster, WasmTimings};
