//! Site capacity and service resource demands.
//!
//! The paper's Scheduler (§IV-B, Fig. 6) is deliberately pluggable but its
//! evaluation treats every Edge Gateway Server as infinitely large. Real
//! provisioning policies (Cohen et al., arXiv:2202.08903 / arXiv:2312.11187)
//! are only meaningful when sites can *fill up*, so this module gives a site
//! a [`SiteCapacity`], a service a [`ResourceRequest`] derived from its
//! container templates, and placement [`DeploymentRequirements`]
//! (affinity/anti-affinity label constraints in the style of edgeless's
//! deployment requirements).
//!
//! The default capacity is [`SiteCapacity::UNLIMITED`] — every admission
//! check trivially passes and the paper scenarios stay byte-identical.

use std::fmt;

/// What a site can hold. Each dimension uses its type's `MAX` as the
/// "unlimited" sentinel, and [`SiteCapacity::UNLIMITED`] (the `Default`) is
/// unlimited in every dimension — the paper's implicit setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCapacity {
    /// Total CPU across the site's nodes, in milli-cores.
    pub cpu_millis: u32,
    /// Total memory across the site's nodes, in MiB.
    pub memory_mib: u64,
    /// Hard cap on concurrently placed replicas (API-object budget).
    pub max_replicas: u32,
}

impl SiteCapacity {
    /// No limit in any dimension.
    pub const UNLIMITED: SiteCapacity = SiteCapacity {
        cpu_millis: u32::MAX,
        memory_mib: u64::MAX,
        max_replicas: u32::MAX,
    };

    /// A concrete budget; replicas stay unlimited unless capped separately.
    pub fn new(cpu_millis: u32, memory_mib: u64) -> SiteCapacity {
        SiteCapacity {
            cpu_millis,
            memory_mib,
            max_replicas: u32::MAX,
        }
    }

    pub fn with_max_replicas(mut self, max_replicas: u32) -> SiteCapacity {
        self.max_replicas = max_replicas;
        self
    }

    /// Is every dimension unlimited (admission can never fail)?
    pub fn is_unlimited(&self) -> bool {
        *self == SiteCapacity::UNLIMITED
    }

    /// Would granting `request` on top of `allocated` stay within budget?
    /// Unlimited dimensions always admit.
    pub fn admits(
        &self,
        allocated: &ResourceAllocation,
        request: &ResourceRequest,
    ) -> Result<(), CapacityShortfall> {
        let replicas = request.replicas;
        if self.max_replicas != u32::MAX {
            let free = self.max_replicas.saturating_sub(allocated.replicas);
            if replicas > free {
                return Err(CapacityShortfall::Replicas {
                    requested: replicas,
                    free,
                });
            }
        }
        if self.cpu_millis != u32::MAX {
            let want = u64::from(request.cpu_millis) * u64::from(replicas);
            let free = u64::from(self.cpu_millis).saturating_sub(allocated.cpu_millis);
            if want > free {
                return Err(CapacityShortfall::Cpu {
                    requested_millis: want,
                    free_millis: free,
                });
            }
        }
        if self.memory_mib != u64::MAX {
            let want = request.memory_mib.saturating_mul(u64::from(replicas));
            let free = self.memory_mib.saturating_sub(allocated.memory_mib);
            if want > free {
                return Err(CapacityShortfall::Memory {
                    requested_mib: want,
                    free_mib: free,
                });
            }
        }
        Ok(())
    }
}

impl Default for SiteCapacity {
    fn default() -> Self {
        SiteCapacity::UNLIMITED
    }
}

/// Which dimension ran out when an admission check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityShortfall {
    Cpu {
        requested_millis: u64,
        free_millis: u64,
    },
    Memory {
        requested_mib: u64,
        free_mib: u64,
    },
    Replicas {
        requested: u32,
        free: u32,
    },
}

impl fmt::Display for CapacityShortfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityShortfall::Cpu {
                requested_millis,
                free_millis,
            } => write!(f, "cpu: need {requested_millis}m, {free_millis}m free"),
            CapacityShortfall::Memory {
                requested_mib,
                free_mib,
            } => write!(f, "memory: need {requested_mib}Mi, {free_mib}Mi free"),
            CapacityShortfall::Replicas { requested, free } => {
                write!(f, "replicas: need {requested}, {free} free")
            }
        }
    }
}

/// What one deployment of a service asks for: per-replica demand times the
/// initial replica count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRequest {
    /// CPU demand per replica, milli-cores (sum over the pod's containers).
    pub cpu_millis: u32,
    /// Memory demand per replica, MiB (sum over the pod's containers).
    pub memory_mib: u64,
    /// Replicas this deployment starts with.
    pub replicas: u32,
}

impl ResourceRequest {
    pub fn new(cpu_millis: u32, memory_mib: u64) -> ResourceRequest {
        ResourceRequest {
            cpu_millis,
            memory_mib,
            replicas: 1,
        }
    }
}

/// Running total of what has been admitted onto one site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceAllocation {
    pub cpu_millis: u64,
    pub memory_mib: u64,
    pub replicas: u32,
}

impl ResourceAllocation {
    /// Book `replicas` instances of the per-replica demand in `request`.
    pub fn add(&mut self, request: &ResourceRequest, replicas: u32) {
        self.cpu_millis = self
            .cpu_millis
            .saturating_add(u64::from(request.cpu_millis) * u64::from(replicas));
        self.memory_mib = self
            .memory_mib
            .saturating_add(request.memory_mib.saturating_mul(u64::from(replicas)));
        self.replicas = self.replicas.saturating_add(replicas);
    }

    /// Release `replicas` instances of the per-replica demand in `request`.
    pub fn remove(&mut self, request: &ResourceRequest, replicas: u32) {
        self.cpu_millis = self
            .cpu_millis
            .saturating_sub(u64::from(request.cpu_millis) * u64::from(replicas));
        self.memory_mib = self
            .memory_mib
            .saturating_sub(request.memory_mib.saturating_mul(u64::from(replicas)));
        self.replicas = self.replicas.saturating_sub(replicas);
    }

    /// Does this total exceed `capacity` in any (limited) dimension?
    pub fn exceeds(&self, capacity: &SiteCapacity) -> bool {
        (capacity.cpu_millis != u32::MAX && self.cpu_millis > u64::from(capacity.cpu_millis))
            || (capacity.memory_mib != u64::MAX && self.memory_mib > capacity.memory_mib)
            || (capacity.max_replicas != u32::MAX && self.replicas > capacity.max_replicas)
    }
}

/// Placement constraints of a service (edgeless-style deployment
/// requirements): the target site must carry every label in
/// `label_match_all` and none in `label_match_none`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeploymentRequirements {
    /// Affinity: labels the site must have.
    pub label_match_all: Vec<String>,
    /// Anti-affinity: labels the site must *not* have.
    pub label_match_none: Vec<String>,
}

impl DeploymentRequirements {
    /// No constraints — every site qualifies.
    pub fn none() -> DeploymentRequirements {
        DeploymentRequirements::default()
    }

    pub fn is_empty(&self) -> bool {
        self.label_match_all.is_empty() && self.label_match_none.is_empty()
    }

    /// First constraint `labels` fails to satisfy, if any.
    pub fn first_unmet<'a>(&'a self, labels: &[String]) -> Option<&'a str> {
        for want in &self.label_match_all {
            if !labels.iter().any(|l| l == want) {
                return Some(want.as_str());
            }
        }
        for forbid in &self.label_match_none {
            if labels.iter().any(|l| l == forbid) {
                return Some(forbid.as_str());
            }
        }
        None
    }

    /// Do the site `labels` satisfy every constraint?
    pub fn satisfied_by(&self, labels: &[String]) -> bool {
        self.first_unmet(labels).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let cap = SiteCapacity::default();
        assert!(cap.is_unlimited());
        let mut alloc = ResourceAllocation::default();
        let req = ResourceRequest::new(u32::MAX - 1, u64::MAX - 1);
        for _ in 0..4 {
            assert!(cap.admits(&alloc, &req).is_ok());
            alloc.add(&req, 1);
        }
        assert!(!alloc.exceeds(&cap));
    }

    #[test]
    fn cpu_shortfall_reported() {
        let cap = SiteCapacity::new(1000, u64::MAX);
        let mut alloc = ResourceAllocation::default();
        alloc.add(&ResourceRequest::new(900, 64), 1);
        let err = cap
            .admits(&alloc, &ResourceRequest::new(200, 64))
            .unwrap_err();
        assert_eq!(
            err,
            CapacityShortfall::Cpu {
                requested_millis: 200,
                free_millis: 100
            }
        );
        assert!(err.to_string().contains("cpu"));
    }

    #[test]
    fn memory_and_replica_limits() {
        let cap = SiteCapacity::new(u32::MAX, 512).with_max_replicas(2);
        let alloc = ResourceAllocation::default();
        assert!(matches!(
            cap.admits(&alloc, &ResourceRequest::new(100, 600)),
            Err(CapacityShortfall::Memory { .. })
        ));
        let mut req = ResourceRequest::new(1, 1);
        req.replicas = 3;
        assert!(matches!(
            cap.admits(&alloc, &req),
            Err(CapacityShortfall::Replicas { .. })
        ));
    }

    #[test]
    fn allocation_add_remove_roundtrip() {
        let req = ResourceRequest::new(250, 128);
        let mut alloc = ResourceAllocation::default();
        alloc.add(&req, 3);
        assert_eq!(alloc.cpu_millis, 750);
        assert_eq!(alloc.memory_mib, 384);
        assert_eq!(alloc.replicas, 3);
        alloc.remove(&req, 3);
        assert_eq!(alloc, ResourceAllocation::default());
    }

    #[test]
    fn exceeds_detects_overshoot() {
        let cap = SiteCapacity::new(100, 100).with_max_replicas(1);
        let mut alloc = ResourceAllocation::default();
        alloc.add(&ResourceRequest::new(150, 10), 1);
        assert!(alloc.exceeds(&cap));
    }

    #[test]
    fn requirements_matching() {
        let labels = vec!["gpu".to_owned(), "zone-a".to_owned()];
        let mut reqs = DeploymentRequirements::none();
        assert!(reqs.is_empty());
        assert!(reqs.satisfied_by(&labels));
        reqs.label_match_all.push("gpu".to_owned());
        assert!(reqs.satisfied_by(&labels));
        reqs.label_match_all.push("zone-b".to_owned());
        assert_eq!(reqs.first_unmet(&labels), Some("zone-b"));
        reqs.label_match_all.pop();
        reqs.label_match_none.push("zone-a".to_owned());
        assert_eq!(reqs.first_unmet(&labels), Some("zone-a"));
    }
}
