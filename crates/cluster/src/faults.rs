//! Fault injection: wrap any [`ClusterBackend`] and make its operations fail
//! or slow down with configured probabilities. Used to test the controller's
//! retry/fallback behaviour — a real edge platform sees transient API
//! failures (etcd leader elections, registry 5xx, engine restarts) that the
//! paper's testbed conveniently never hit.

use containers::ImageRef;
use registry::RegistrySet;
use simcore::{DurationDist, SimRng, SimTime};

use crate::api::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceStatus,
};
use crate::template::ServiceTemplate;

/// Failure probabilities and latency inflation per operation class.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that a pull fails (registry error).
    pub pull_failure: f64,
    /// Probability that create fails (API error).
    pub create_failure: f64,
    /// Probability that scale-up fails (placement/runtime error).
    pub scale_up_failure: f64,
    /// Probability that scale-down fails (API error during idle scale-to-zero
    /// — the controller must retry, not leak the instance).
    pub scale_down_failure: f64,
    /// Extra latency added to every successful mutating call.
    pub extra_latency: DurationDist,
}

impl FaultPlan {
    /// No faults (the wrapper becomes a transparent pass-through).
    pub fn none() -> FaultPlan {
        FaultPlan {
            pull_failure: 0.0,
            create_failure: 0.0,
            scale_up_failure: 0.0,
            scale_down_failure: 0.0,
            extra_latency: DurationDist::zero(),
        }
    }

    /// A uniformly flaky backend.
    pub fn flaky(rate: f64) -> FaultPlan {
        FaultPlan {
            pull_failure: rate,
            create_failure: rate,
            scale_up_failure: rate,
            scale_down_failure: rate,
            extra_latency: DurationDist::zero(),
        }
    }
}

/// A backend wrapper injecting faults per a [`FaultPlan`].
pub struct FaultyCluster<B> {
    pub inner: B,
    plan: FaultPlan,
    rng: SimRng,
    /// Injected failures so far (diagnostics / test assertions).
    pub injected: u64,
}

impl<B: ClusterBackend> FaultyCluster<B> {
    pub fn new(inner: B, plan: FaultPlan, rng: SimRng) -> FaultyCluster<B> {
        FaultyCluster {
            inner,
            plan,
            rng,
            injected: 0,
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        let fail = self.rng.chance(p);
        if fail {
            self.injected += 1;
        }
        fail
    }

    fn delay(&mut self, now: SimTime) -> SimTime {
        now + self.plan.extra_latency.clone().sample(&mut self.rng)
    }
}

impl<B: ClusterBackend> ClusterBackend for FaultyCluster<B> {
    fn cluster_name(&self) -> &str {
        self.inner.cluster_name()
    }
    fn kind(&self) -> ClusterKind {
        self.inner.kind()
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        if self.roll(self.plan.pull_failure) {
            return Err(ClusterError::ImageUnavailable(
                template
                    .images()
                    .next()
                    .cloned()
                    .unwrap_or_else(|| ImageRef::new("unknown")),
            ));
        }
        let start = self.delay(now);
        self.inner.pull(start, template, registries)
    }

    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        if self.roll(self.plan.create_failure) {
            return Err(ClusterError::InsufficientResources("api"));
        }
        let start = self.delay(now);
        self.inner.create(start, template)
    }

    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        if self.roll(self.plan.scale_up_failure) {
            return Err(ClusterError::InsufficientResources("placement"));
        }
        let start = self.delay(now);
        self.inner.scale_up(start, service, replicas)
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        if self.roll(self.plan.scale_down_failure) {
            return Err(ClusterError::InsufficientResources("scale-down api"));
        }
        let start = self.delay(now);
        self.inner.scale_down(start, service, replicas)
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        self.inner.remove(now, service)
    }

    fn delete_image(&mut self, now: SimTime, image: &ImageRef) -> bool {
        self.inner.delete_image(now, image)
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        self.inner.status(now, service)
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        self.inner.has_images(template)
    }

    fn services(&self) -> Vec<String> {
        self.inner.services()
    }

    fn load(&self) -> f64 {
        self.inner.load()
    }

    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        self.inner.inject_crash(now, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docker::DockerCluster;
    use containers::image::synthesize_layers;
    use containers::{ImageManifest, Runtime};
    use registry::{Registry, RegistryProfile};
    use simcore::DurationDist as DD;
    use simnet::IpAddr;

    fn registries() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 1_000_000, 2),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s
    }

    fn docker() -> DockerCluster {
        let rng = SimRng::seed_from_u64(1);
        DockerCluster::new(
            "d",
            IpAddr::new(10, 0, 0, 1),
            Runtime::egs(rng.stream("rt")),
            rng.stream("d"),
        )
    }

    fn tpl() -> ServiceTemplate {
        ServiceTemplate::single("svc", "nginx:1.23.2", 80, DD::zero())
    }

    #[test]
    fn no_faults_is_transparent() {
        let mut f = FaultyCluster::new(docker(), FaultPlan::none(), SimRng::seed_from_u64(2));
        let regs = registries();
        let t = f.pull(SimTime::ZERO, &tpl(), &regs).unwrap();
        let t = f.create(t, &tpl()).unwrap();
        let r = f.scale_up(t, "svc", 1).unwrap();
        assert!(f.is_ready(r.expected_ready, "svc"));
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn always_failing_fails_everything() {
        let mut f = FaultyCluster::new(docker(), FaultPlan::flaky(1.0), SimRng::seed_from_u64(3));
        let regs = registries();
        assert!(f.pull(SimTime::ZERO, &tpl(), &regs).is_err());
        assert!(f.create(SimTime::ZERO, &tpl()).is_err());
        assert!(f.scale_up(SimTime::ZERO, "svc", 1).is_err());
        assert!(f.scale_down(SimTime::ZERO, "svc", 0).is_err());
        assert_eq!(f.injected, 4);
    }

    #[test]
    fn half_flaky_fails_about_half() {
        let mut f = FaultyCluster::new(docker(), FaultPlan::flaky(0.5), SimRng::seed_from_u64(4));
        let regs = registries();
        let mut failures = 0;
        for _ in 0..200 {
            if f.pull(SimTime::ZERO, &tpl(), &regs).is_err() {
                failures += 1;
            }
        }
        assert!((60..140).contains(&failures), "failures={failures}");
    }

    #[test]
    fn extra_latency_shifts_completions() {
        let plan = FaultPlan {
            extra_latency: DD::constant_ms(500.0),
            ..FaultPlan::none()
        };
        let mut plain = docker();
        let mut f = FaultyCluster::new(docker(), plan, SimRng::seed_from_u64(5));
        let regs = registries();
        let a = plain.pull(SimTime::ZERO, &tpl(), &regs).unwrap();
        let b = f.pull(SimTime::ZERO, &tpl(), &regs).unwrap();
        // same seeds inside differ, but the 500 ms floor must show
        assert!(b >= a, "b={b} a={a}");
        assert!(b.as_millis_f64() >= 500.0);
    }

    #[test]
    fn queries_pass_through() {
        let f = FaultyCluster::new(docker(), FaultPlan::flaky(1.0), SimRng::seed_from_u64(6));
        assert_eq!(f.kind(), ClusterKind::Docker);
        assert_eq!(f.cluster_name(), "d");
        assert!(!f.status(SimTime::ZERO, "svc").created);
        assert!(f.services().is_empty());
    }
}
