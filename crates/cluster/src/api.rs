//! The backend-neutral cluster API: the controller's Dispatcher talks to
//! every edge cluster through [`ClusterBackend`], mirroring how the paper's
//! Python controller wraps the Docker and Kubernetes client libraries behind
//! one interface.
//!
//! All mutating operations return the **completion instant** of the work they
//! start; queries take `now` and answer consistently with in-flight work.

use containers::ImageRef;
use registry::RegistrySet;
use simcore::SimTime;
use simnet::SocketAddr;

use crate::template::ServiceTemplate;

/// Which kind of backend a cluster is (paper Fig. 11/12 compare the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    Docker,
    Kubernetes,
    /// A serverless WebAssembly runtime (the paper's §VIII future work).
    Wasm,
}

impl std::fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterKind::Docker => f.write_str("Docker"),
            ClusterKind::Kubernetes => f.write_str("K8s"),
            ClusterKind::Wasm => f.write_str("Wasm"),
        }
    }
}

/// Status snapshot of one service on one cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Are all images of the service cached on the cluster?
    pub images_cached: bool,
    /// Has the service been created (containers / Deployment+Service)?
    pub created: bool,
    pub desired_replicas: u32,
    /// Replicas whose port is connectable at the query instant.
    pub ready_replicas: u32,
    /// Where to reach the service on this cluster, once created.
    pub endpoint: Option<SocketAddr>,
}

/// A [`ServiceStatus`] plus an explicit validity window, for controller-side
/// caching (DESIGN.md §5i). The snapshot stays *exact* — bit-identical to a
/// fresh [`ClusterBackend::status`] call — until either the backend's
/// mutation epoch changes (any `&mut` operation) or sim time reaches
/// `stable_until` (the next container state/readiness transition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSnapshot {
    pub status: ServiceStatus,
    /// First future instant at which `status` (or the endpoint list) could
    /// change without a backend mutation; `SimTime::FAR_FUTURE` once every
    /// container has settled.
    pub stable_until: SimTime,
    /// The backend's mutation epoch at snapshot time.
    pub epoch: u64,
}

impl ServiceStatus {
    pub fn absent() -> ServiceStatus {
        ServiceStatus {
            images_cached: false,
            created: false,
            desired_replicas: 0,
            ready_replicas: 0,
            endpoint: None,
        }
    }

    pub fn is_ready(&self) -> bool {
        self.ready_replicas > 0
    }
}

/// Errors common to all backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    UnknownService(String),
    AlreadyCreated(String),
    /// Scale-up attempted before the service was created.
    NotCreated(String),
    /// Scale-up attempted with images missing from the node store.
    ImageNotCached(ImageRef),
    /// No registry serves the image.
    ImageUnavailable(ImageRef),
    InsufficientResources(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownService(s) => write!(f, "unknown service {s}"),
            ClusterError::AlreadyCreated(s) => write!(f, "service {s} already created"),
            ClusterError::NotCreated(s) => write!(f, "service {s} not created"),
            ClusterError::ImageNotCached(i) => write!(f, "image {i} not cached on node"),
            ClusterError::ImageUnavailable(i) => write!(f, "no registry serves {i}"),
            ClusterError::InsufficientResources(w) => write!(f, "insufficient {w}"),
        }
    }
}
impl std::error::Error for ClusterError {}

/// Result of a scale-up call.
///
/// `accepted_at` is when the backend's API returned (Docker's `start` returns
/// once the process is spawned; `kubectl scale` returns once the replica
/// count is committed). `expected_ready` is when the backend expects the new
/// replicas to be connectable. The gap between the two is what the
/// controller's port polling experiences as *wait time* (paper Figs. 14–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleReceipt {
    pub accepted_at: SimTime,
    pub expected_ready: SimTime,
}

/// One edge cluster as seen by the SDN controller's Dispatcher.
pub trait ClusterBackend {
    fn cluster_name(&self) -> &str;
    fn kind(&self) -> ClusterKind;

    /// Phase 1 (Fig. 4): ensure all images of `template` are cached locally.
    /// Returns the instant the last image is fully on disk (== `now` when
    /// everything is already cached). Idempotent.
    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError>;

    /// Phase 2: create the service — Docker: create the container(s);
    /// Kubernetes: create Deployment + Service with zero replicas.
    /// Returns the creation-complete instant.
    fn create(&mut self, now: SimTime, template: &ServiceTemplate)
        -> Result<SimTime, ClusterError>;

    /// Phase 3: scale the service to `replicas`. The controller still
    /// verifies readiness by polling the port (paper §VI) — the receipt's
    /// `expected_ready` is the backend's own view, not a promise.
    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError>;

    /// Scale down to `replicas` (0 = stop all instances, keep the service).
    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError>;

    /// Remove the service entirely (containers / Deployment + Service).
    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError>;

    /// Delete a cached image from the node (Fig. 4's optional Delete phase).
    fn delete_image(&mut self, now: SimTime, image: &ImageRef) -> bool;

    /// Status of `service` at `now`. Note `images_cached` is only meaningful
    /// once the service is created; use [`ClusterBackend::has_images`] to ask
    /// about the node's layer store independently of service objects.
    fn status(&self, now: SimTime, service: &str) -> ServiceStatus;

    /// Are all images of `template` present on the node (regardless of
    /// whether the service has been created)?
    fn has_images(&self, template: &ServiceTemplate) -> bool;

    /// Is the service port connectable at `now`? (The controller's probe.)
    fn is_ready(&self, now: SimTime, service: &str) -> bool {
        self.status(now, service).is_ready()
    }

    /// Addresses of the individual *ready* replicas, for Local-Scheduler
    /// instance selection. Backends whose service address already load
    /// balances internally (Kubernetes Services via kube-proxy, the wasm
    /// gateway) report the one virtual endpoint; Docker exposes one host
    /// port per replica.
    fn replica_endpoints(&self, now: SimTime, service: &str) -> Vec<SocketAddr> {
        match self.status(now, service) {
            s if s.is_ready() => s.endpoint.into_iter().collect(),
            _ => Vec::new(),
        }
    }

    /// Allocation-free variant of [`ClusterBackend::replica_endpoints`] for
    /// the controller's per-packet-in path: append the ready endpoints to a
    /// caller-owned scratch buffer instead of returning a fresh `Vec`.
    fn replica_endpoints_into(&self, now: SimTime, service: &str, out: &mut Vec<SocketAddr>) {
        out.extend(self.replica_endpoints(now, service));
    }

    /// One-shot status + ready-endpoints snapshot with a validity window, so
    /// the controller can cache per-service state densely instead of paying
    /// a name-keyed probe on every packet-in. Appends the ready endpoints to
    /// `endpoints` (same contents as
    /// [`ClusterBackend::replica_endpoints_into`]). Backends that cannot
    /// bound validity return `None` (the default) and callers fall back to
    /// per-call queries.
    fn service_snapshot(
        &self,
        now: SimTime,
        service: &str,
        endpoints: &mut Vec<SocketAddr>,
    ) -> Option<ServiceSnapshot> {
        let _ = (now, service, endpoints);
        None
    }

    /// Monotonic counter that changes on every `&mut` operation, letting
    /// callers cheaply validate cached [`ServiceSnapshot`]s. `None` (the
    /// default) means the backend does not support snapshot caching.
    fn mutation_epoch(&self) -> Option<u64> {
        None
    }

    /// Names of all created services (for inventory / scale-down sweeps).
    fn services(&self) -> Vec<String>;

    /// Current CPU load fraction (0.0–1.0) — fed to load-aware schedulers.
    fn load(&self) -> f64;

    /// Fault injection: kill one running instance of `service` at `now`.
    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome;
}

/// What happened when a crash was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOutcome {
    /// Nothing was running, nothing crashed.
    NoInstance,
    /// An instance died and the backend will NOT recover it on its own
    /// (plain Docker without a restart policy): recovery is the
    /// controller's job.
    Down,
    /// An instance died and the backend restores it by itself at the given
    /// instant (kubelet restart, wasm gateway re-instantiation).
    Recovering(SimTime),
}

impl CrashOutcome {
    /// Did anything actually crash?
    pub fn crashed(&self) -> bool {
        !matches!(self, CrashOutcome::NoInstance)
    }

    /// Self-recovery instant, if the backend heals itself.
    pub fn recovery(&self) -> Option<SimTime> {
        match self {
            CrashOutcome::Recovering(t) => Some(*t),
            _ => None,
        }
    }
}
