//! A Kubernetes-like control plane on one node.
//!
//! Reproduces the *control-plane overhead* that makes Kubernetes scale-up take
//! ~3 s where Docker takes < 1 s (Fig. 11), by modelling the actual causal
//! chain a replica-count change travels:
//!
//! ```text
//! kubectl scale        → API server write
//!   deployment ctrl    → (watch) ReplicaSet update        (API write)
//!   replicaset ctrl    → (watch) Pod object created       (API write)
//!   scheduler          → (watch) filter/score + bind      (API write)
//!   kubelet            → (watch + sync period) sandbox + containers via containerd
//!   readiness probe    → first successful probe ≥ port-open instant
//!   endpoints ctrl     → (watch) endpoints update, kube-proxy programs rules
//! ```
//!
//! Every arrow costs a watch-propagation delay and/or an API round trip;
//! container creation itself is the *same containerd work Docker does* — the
//! difference is pure orchestration latency, which is the paper's point.

use std::collections::BTreeMap;

use containers::{ContainerId, ContainerSpec, ContainerState, Runtime};
use registry::RegistrySet;
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::api::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceStatus,
};
use crate::template::ServiceTemplate;

/// Control-plane latency knobs.
#[derive(Debug, Clone)]
pub struct K8sTimings {
    /// One API-server write (validation + etcd commit).
    pub api_call: DurationDist,
    /// Time for a watcher (controller, scheduler, kubelet) to observe a
    /// change it is watching.
    pub watch_latency: DurationDist,
    /// Reconcile work inside a controller once it observed the change.
    pub controller_sync: DurationDist,
    /// Scheduler queue wait + filter/score cycle (the default
    /// kube-scheduler, shared by every pod in the cluster).
    pub scheduler_latency: DurationDist,
    /// A dedicated custom scheduler (`schedulerName`, paper \[26\]/\[27\]):
    /// schedules only edge services, so its queue is short.
    pub custom_scheduler_latency: DurationDist,
    /// Kubelet pod-sync pickup (sync-loop scheduling + pod-worker start).
    pub kubelet_sync: DurationDist,
    /// Readiness probes run at this period once the container is running.
    pub readiness_probe_period: SimDuration,
    /// Endpoints controller + kube-proxy programming after the pod reports
    /// Ready.
    pub endpoints_propagation: DurationDist,
}

impl K8sTimings {
    /// Calibrated so that nginx-class scale-up lands around the paper's ~3 s
    /// median on the EGS (Fig. 11) while the containerd portion stays
    /// identical to Docker's.
    pub fn egs() -> K8sTimings {
        K8sTimings {
            api_call: DurationDist::log_normal_ms(16.0, 0.25),
            watch_latency: DurationDist::log_normal_ms(85.0, 0.3),
            controller_sync: DurationDist::log_normal_ms(30.0, 0.3),
            scheduler_latency: DurationDist::log_normal_ms(260.0, 0.3),
            custom_scheduler_latency: DurationDist::log_normal_ms(60.0, 0.3),
            kubelet_sync: DurationDist::log_normal_ms(380.0, 0.25),
            readiness_probe_period: SimDuration::from_secs(1),
            endpoints_propagation: DurationDist::log_normal_ms(230.0, 0.3),
        }
    }
}

/// One pod: its containers and when it became (or will become) connectable.
#[derive(Debug, Clone)]
struct Pod {
    containers: Vec<ContainerId>,
    /// Instant the Service endpoint routes to this pod (readiness observed +
    /// endpoints propagated).
    connectable_at: SimTime,
    terminating: bool,
}

#[derive(Debug)]
struct K8sService {
    template: ServiceTemplate,
    /// NodePort allocated for the generated `Service` object.
    node_port: u16,
    desired: u32,
    pods: Vec<Pod>,
}

/// A Kubernetes cluster (single-node, like the paper's EGS K8s).
pub struct K8sCluster {
    name: String,
    ip: IpAddr,
    pub runtime: Runtime,
    rng: SimRng,
    timings: K8sTimings,
    // BTreeMap: `services()` iterates; name order must not depend on hash seed.
    services: BTreeMap<String, K8sService>,
    next_node_port: u16,
}

impl K8sCluster {
    pub fn new(
        name: impl Into<String>,
        ip: IpAddr,
        runtime: Runtime,
        rng: SimRng,
        timings: K8sTimings,
    ) -> K8sCluster {
        K8sCluster {
            name: name.into(),
            ip,
            runtime,
            rng,
            timings,
            services: BTreeMap::new(),
            next_node_port: 30000,
        }
    }

    fn sample(&mut self, which: fn(&K8sTimings) -> &DurationDist) -> SimDuration {
        let dist = which(&self.timings).clone();
        dist.sample(&mut self.rng)
    }

    /// Walk the control-plane chain for one new pod, starting from the
    /// moment the replica-count change is committed. Returns the pod.
    fn spawn_pod(
        &mut self,
        committed: SimTime,
        template: &ServiceTemplate,
    ) -> Result<Pod, ClusterError> {
        // deployment controller observes scale change, updates ReplicaSet
        let mut t = committed
            + self.sample(|t| &t.watch_latency)
            + self.sample(|t| &t.controller_sync)
            + self.sample(|t| &t.api_call);
        // replicaset controller creates the Pod object
        t += self.sample(|t| &t.watch_latency)
            + self.sample(|t| &t.controller_sync)
            + self.sample(|t| &t.api_call);
        // scheduler binds: the default kube-scheduler, or the service's
        // custom scheduler with its dedicated (short) queue
        let sched = if template.scheduler_name.is_some() {
            self.sample(|t| &t.custom_scheduler_latency)
        } else {
            self.sample(|t| &t.scheduler_latency)
        };
        t += sched + self.sample(|t| &t.api_call);
        // kubelet observes the binding and starts the pod worker
        t += self.sample(|t| &t.watch_latency) + self.sample(|t| &t.kubelet_sync);

        // Sandbox + containers via containerd. The first start pays namespace
        // setup (the sandbox); subsequent containers join it but are modelled
        // with their own start cost, matching the Docker backend's treatment
        // of multi-container services.
        let mut containers = Vec::with_capacity(template.containers.len());
        let mut all_ready = t;
        let mut running_last = t;
        for ct in &template.containers {
            let spec = ContainerSpec {
                name: format!("{}-{}", template.name, ct.name),
                image: ct.image.clone(),
                app_init: ct.app_init.sample(&mut self.rng),
                cpu_millis: ct.cpu_millis,
                mem_bytes: ct.mem_bytes,
            };
            let (id, created) = self.runtime.create(t, spec).map_err(|e| match e {
                containers::RuntimeError::ImageNotPresent(i) => ClusterError::ImageNotCached(i),
                containers::RuntimeError::InsufficientResources { what } => {
                    ClusterError::InsufficientResources(what)
                }
                other => panic!("unexpected runtime error in pod sync: {other}"),
            })?;
            let (running_at, ready_at) = self.runtime.start(created, id).map_err(|e| match e {
                containers::RuntimeError::InsufficientResources { what } => {
                    ClusterError::InsufficientResources(what)
                }
                other => panic!("unexpected runtime error during pod start: {other}"),
            })?;
            t = running_at;
            running_last = running_last.max(running_at);
            all_ready = all_ready.max(ready_at);
            containers.push(id);
        }

        // Readiness: the kubelet probes at a fixed period from the instant
        // the last container started running; the pod reports Ready at the
        // first probe at-or-after every port is open.
        let period = self.timings.readiness_probe_period;
        let ready_observed = if period.is_zero() {
            all_ready
        } else {
            let elapsed = all_ready.since(running_last);
            let probes = elapsed.as_nanos().div_ceil(period.as_nanos());
            running_last + period * probes.max(1)
        };

        // Endpoints propagate; the NodePort then routes to the pod.
        let connectable_at = ready_observed
            + self.sample(|t| &t.watch_latency)
            + self.sample(|t| &t.endpoints_propagation);

        Ok(Pod {
            containers,
            connectable_at,
            terminating: false,
        })
    }
}

impl ClusterBackend for K8sCluster {
    fn cluster_name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ClusterKind {
        ClusterKind::Kubernetes
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        let mut t = now;
        for image in template.images() {
            let reg = registries
                .route(image)
                .ok_or_else(|| ClusterError::ImageUnavailable(image.clone()))?;
            let outcome = reg
                .pull(t, image, &mut self.runtime.store, &mut self.rng)
                .map_err(|registry::PullError::UnknownImage(i)| {
                    ClusterError::ImageUnavailable(i)
                })?;
            t = outcome.completed_at;
        }
        Ok(t)
    }

    /// Create = `kubectl apply` of the annotated Deployment (replicas: 0) and
    /// the generated Service: two API writes, no pods yet.
    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        if self.services.contains_key(&template.name) {
            return Err(ClusterError::AlreadyCreated(template.name.clone()));
        }
        let t = now + self.sample(|t| &t.api_call) + self.sample(|t| &t.api_call);
        let node_port = self.next_node_port;
        self.next_node_port += 1;
        self.services.insert(
            template.name.clone(),
            K8sService {
                template: template.clone(),
                node_port,
                desired: 0,
                pods: Vec::new(),
            },
        );
        Ok(t)
    }

    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        if !self.services.contains_key(service) {
            return Err(ClusterError::NotCreated(service.to_string()));
        }
        let template = self.services[service].template.clone();
        let live = self.services[service]
            .pods
            .iter()
            .filter(|p| !p.terminating)
            .count() as u32;

        // API write committing the new replica count.
        let committed = now + self.sample(|t| &t.api_call);
        let mut latest = committed;
        for _ in live..replicas {
            let pod = self.spawn_pod(committed, &template)?;
            latest = latest.max(pod.connectable_at);
            self.services.get_mut(service).unwrap().pods.push(pod);
        }
        // Pods already spawned but still becoming connectable gate readiness
        // for the requested count too.
        {
            let svc = &self.services[service];
            let mut times: Vec<SimTime> = svc
                .pods
                .iter()
                .filter(|p| !p.terminating)
                .map(|p| p.connectable_at)
                .collect();
            times.sort();
            if let Some(&t) = times.get(replicas.saturating_sub(1) as usize) {
                latest = latest.max(t);
            }
        }
        let svc = self.services.get_mut(service).unwrap();
        svc.desired = svc.desired.max(replicas);
        Ok(ScaleReceipt {
            accepted_at: committed,
            expected_ready: latest,
        })
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        if !self.services.contains_key(service) {
            return Err(ClusterError::UnknownService(service.to_string()));
        }
        // Replica-count write, then the controllers pick pods to terminate.
        let committed = now + self.sample(|t| &t.api_call);
        let lag = self.sample(|t| &t.watch_latency) + self.sample(|t| &t.controller_sync);
        let svc = self.services.get_mut(service).unwrap();
        svc.desired = svc.desired.min(replicas);
        let live: Vec<usize> = svc
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.terminating)
            .map(|(i, _)| i)
            .collect();
        let excess = live.len().saturating_sub(replicas as usize);
        // Kubernetes terminates the newest pods first.
        let doomed: Vec<usize> = live.into_iter().rev().take(excess).collect();
        let mut t = committed + lag;
        let mut stops: Vec<ContainerId> = Vec::new();
        for i in &doomed {
            svc.pods[*i].terminating = true;
            stops.extend(svc.pods[*i].containers.iter().copied());
        }
        for id in stops {
            if self.runtime.get(id).map(|c| c.state_at(t)) == Some(ContainerState::Running) {
                t = self
                    .runtime
                    .stop(t, id)
                    .expect("stop running pod container");
            }
        }
        Ok(t)
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        if !self.services.contains_key(service) {
            return Err(ClusterError::UnknownService(service.to_string()));
        }
        let done = self.scale_down(now, service, 0)?;
        let svc = self.services.remove(service).unwrap();
        let mut t = done + self.sample(|t| &t.api_call) + self.sample(|t| &t.api_call);
        for pod in &svc.pods {
            for &id in &pod.containers {
                if matches!(
                    self.runtime.get(id).map(|c| c.state_at(t)),
                    Some(ContainerState::Created | ContainerState::Stopped)
                ) {
                    t = self.runtime.remove(t, id).expect("remove pod container");
                }
            }
        }
        Ok(t)
    }

    fn delete_image(&mut self, _now: SimTime, image: &containers::ImageRef) -> bool {
        self.runtime.store.remove_image(image)
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        let Some(svc) = self.services.get(service) else {
            return ServiceStatus::absent();
        };
        let images_cached = svc
            .template
            .images()
            .all(|i| self.runtime.store.has_image(i));
        let ready = svc
            .pods
            .iter()
            .filter(|p| !p.terminating && now >= p.connectable_at)
            .count() as u32;
        ServiceStatus {
            images_cached,
            created: true,
            desired_replicas: svc.desired,
            ready_replicas: ready,
            endpoint: Some(SocketAddr::new(self.ip, svc.node_port)),
        }
    }

    fn services(&self) -> Vec<String> {
        // BTreeMap keys are already in sorted order.
        self.services.keys().cloned().collect()
    }

    fn load(&self) -> f64 {
        self.runtime.cpu_utilization()
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        template.images().all(|i| self.runtime.store.has_image(i))
    }

    /// The kubelet notices the exit and restarts the containers
    /// (restartPolicy: Always): sync pickup, container starts, readiness
    /// probe, endpoints propagation — self-healing with no controller help.
    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        let Some(svc) = self.services.get(service) else {
            return CrashOutcome::NoInstance;
        };
        let Some(idx) = svc.pods.iter().position(|p| {
            !p.terminating
                && now >= p.connectable_at
                && p.containers.iter().all(|&id| {
                    self.runtime.get(id).map(|c| c.state_at(now))
                        == Some(containers::ContainerState::Running)
                })
        }) else {
            return CrashOutcome::NoInstance;
        };
        let containers = svc.pods[idx].containers.clone();
        for &id in &containers {
            let _ = self.runtime.crash(now, id);
        }
        // kubelet pickup + restart each container + readiness + endpoints
        let mut t = now + self.sample(|t| &t.kubelet_sync);
        let mut all_ready = t;
        let mut running_last = t;
        for &id in &containers {
            if let Ok((running_at, ready_at)) = self.runtime.start(t, id) {
                t = running_at;
                running_last = running_last.max(running_at);
                all_ready = all_ready.max(ready_at);
            }
        }
        let period = self.timings.readiness_probe_period;
        let ready_observed = if period.is_zero() {
            all_ready
        } else {
            let elapsed = all_ready.since(running_last);
            let probes = elapsed.as_nanos().div_ceil(period.as_nanos());
            running_last + period * probes.max(1)
        };
        let recovered = ready_observed
            + self.sample(|t| &t.watch_latency)
            + self.sample(|t| &t.endpoints_propagation);
        self.services.get_mut(service).unwrap().pods[idx].connectable_at = recovered;
        CrashOutcome::Recovering(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docker::DockerCluster;
    use containers::image::synthesize_layers;
    use containers::ImageManifest;
    use registry::{Registry, RegistryProfile};

    fn registries() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 141_000_000, 6),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s
    }

    fn cluster(seed: u64) -> K8sCluster {
        let rng = SimRng::seed_from_u64(seed);
        K8sCluster::new(
            "egs-k8s",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("runtime")),
            rng.stream("k8s"),
            K8sTimings::egs(),
        )
    }

    fn nginx() -> ServiceTemplate {
        ServiceTemplate::single(
            "nginx-svc",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(110.0),
        )
    }

    fn deploy_ready_ms(seed: u64) -> f64 {
        let mut c = cluster(seed);
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        (ready - created).as_millis_f64()
    }

    #[test]
    fn k8s_scale_up_is_about_three_seconds() {
        // Fig. 11: K8s scale-up ≈ 3 s (vs Docker < 1 s).
        let mut samples: Vec<f64> = (0..31).map(deploy_ready_ms).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (2200.0..3800.0).contains(&median),
            "K8s scale-up median {median} ms, want ~3000"
        );
    }

    #[test]
    fn k8s_slower_than_docker_by_factor_3_to_8() {
        let regs = registries();
        let tpl = nginx();
        let mut k8s_ms = Vec::new();
        let mut docker_ms = Vec::new();
        for seed in 0..15 {
            k8s_ms.push(deploy_ready_ms(seed));
            let rng = SimRng::seed_from_u64(seed + 1000);
            let mut d = DockerCluster::new(
                "egs-docker",
                IpAddr::new(10, 0, 0, 100),
                Runtime::egs(rng.stream("runtime")),
                rng.stream("docker"),
            );
            let pulled = d.pull(SimTime::ZERO, &tpl, &regs).unwrap();
            let created = d.create(pulled, &tpl).unwrap();
            let ready = d.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
            docker_ms.push((ready - created).as_millis_f64());
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let k = med(&mut k8s_ms);
        let d = med(&mut docker_ms);
        let factor = k / d;
        assert!(
            (3.0..9.0).contains(&factor),
            "k8s/docker = {factor} (k={k}, d={d})"
        );
    }

    #[test]
    fn create_is_fast_api_writes_only() {
        let mut c = cluster(3);
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ms = (created - pulled).as_millis_f64();
        assert!(ms < 120.0, "k8s create took {ms} ms, want 2 API writes");
        assert_eq!(c.status(created, "nginx-svc").ready_replicas, 0);
        assert_eq!(c.status(created, "nginx-svc").desired_replicas, 0);
    }

    #[test]
    fn readiness_probe_quantizes_connectability() {
        // With a 1 s probe period, a pod whose app is ready at +110 ms is
        // only observed Ready at the next probe tick.
        let mut c = cluster(4);
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let connectable = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        // port opens ~= created + chain + start + 110ms; connectable must be
        // at least a probe period after the container started running
        let pod = &c.services["nginx-svc"].pods[0];
        let port_open = c.runtime.get(pod.containers[0]).unwrap().ready_at();
        assert!(connectable > port_open, "endpoints lag readiness");
    }

    #[test]
    fn scale_up_unpulled_image_fails() {
        let mut c = cluster(5);
        // create will succeed (API objects don't need the image)…
        let created = c.create(SimTime::ZERO, &nginx()).unwrap();
        // …but the kubelet cannot start the pod.
        let err = c.scale_up(created, "nginx-svc", 1).unwrap_err();
        assert!(matches!(err, ClusterError::ImageNotCached(_)));
    }

    #[test]
    fn scale_down_then_up_cycles() {
        let mut c = cluster(6);
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 2).unwrap().expected_ready;
        assert_eq!(c.status(ready, "nginx-svc").ready_replicas, 2);
        let down = c.scale_down(ready, "nginx-svc", 1).unwrap();
        assert_eq!(c.status(down, "nginx-svc").ready_replicas, 1);
        let up = c.scale_up(down, "nginx-svc", 2).unwrap().expected_ready;
        assert_eq!(c.status(up, "nginx-svc").ready_replicas, 2);
    }

    #[test]
    fn remove_clears_everything_but_images() {
        let mut c = cluster(7);
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        let gone = c.remove(ready, "nginx-svc").unwrap();
        assert!(!c.status(gone, "nginx-svc").created);
        assert!(c
            .runtime
            .store
            .has_image(&containers::ImageRef::new("nginx:1.23.2")));
        assert_eq!(c.runtime.container_count(), 0);
    }

    #[test]
    fn node_ports_are_distinct() {
        let mut c = cluster(8);
        let regs = registries();
        let a = ServiceTemplate::single("svc-a", "nginx:1.23.2", 80, DurationDist::zero());
        let b = ServiceTemplate::single("svc-b", "nginx:1.23.2", 80, DurationDist::zero());
        let pulled = c.pull(SimTime::ZERO, &a, &regs).unwrap();
        c.create(pulled, &a).unwrap();
        c.create(pulled, &b).unwrap();
        let ea = c.status(pulled, "svc-a").endpoint.unwrap();
        let eb = c.status(pulled, "svc-b").endpoint.unwrap();
        assert_ne!(ea, eb);
        assert!(ea.port >= 30000 && eb.port >= 30000, "NodePort range");
    }

    #[test]
    fn custom_scheduler_cuts_scheduling_latency() {
        // The paper's §V hook: a custom schedulerName ([26]/[27]) routes the
        // pod through a dedicated, short-queue scheduler.
        let run = |custom: bool, seed: u64| {
            let mut c = cluster(seed);
            let regs = registries();
            let mut tpl = nginx();
            if custom {
                tpl.scheduler_name = Some("edge-matching-scheduler".into());
            }
            let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
            let created = c.create(pulled, &tpl).unwrap();
            let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
            (ready - created).as_millis_f64()
        };
        let mut default_ms = Vec::new();
        let mut custom_ms = Vec::new();
        for seed in 100..115 {
            default_ms.push(run(false, seed));
            custom_ms.push(run(true, seed));
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let d = med(&mut default_ms);
        let c = med(&mut custom_ms);
        assert!(
            d - c > 100.0,
            "custom scheduler should save ~200 ms of queue time: default={d} custom={c}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(deploy_ready_ms(11), deploy_ready_ms(11));
        assert_ne!(deploy_ready_ms(11), deploy_ready_ms(12));
    }
}
