//! A WebAssembly serverless backend — the paper's future work.
//!
//! The conclusion (§VIII) plans to "extend our solution for transparent
//! access by enabling the side-by-side operation of containers and serverless
//! applications and evaluate how well the latter would perform in a
//! transparent access approach", citing Gackstatter et al. \[7\] (WASM cold
//! starts are far below container cold starts) and the FAASM/Sledge line of
//! work \[24\], \[25\].
//!
//! The model follows those measurements:
//!
//! * "images" are **modules**: single-digit-MiB single-layer artifacts, so the
//!   Pull phase is tiny,
//! * *Create* registers the function with the runtime gateway (one API call),
//! * *Scale-Up* instantiates: module compilation is **cached after first
//!   use**; instantiation itself is in the low milliseconds — there is no
//!   namespace setup, which is precisely what makes containers slow
//!   (Mohan et al. \[23\]),
//! * trade-off knob: per-request overhead is *higher* than a warm container
//!   (call gate + sandboxing), reflecting the papers' observation that wasm
//!   wins cold starts but not necessarily steady-state throughput.

use std::collections::{BTreeMap, HashSet};

use containers::{ImageRef, ImageStore};
use registry::RegistrySet;
use simcore::{DurationDist, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::api::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceStatus,
};
use crate::template::ServiceTemplate;

/// Cost knobs of the serverless runtime.
#[derive(Debug, Clone)]
pub struct WasmTimings {
    /// Gateway API call (register / scale).
    pub api_call: DurationDist,
    /// First-use module compilation (cached afterwards).
    pub compile: DurationDist,
    /// Instantiation of a compiled module (the "cold start").
    pub instantiate: DurationDist,
}

impl WasmTimings {
    /// Calibrated to the WebAssembly-at-the-edge literature: instantiation
    /// in the low milliseconds, compilation tens of ms once.
    pub fn egs() -> WasmTimings {
        WasmTimings {
            api_call: DurationDist::log_normal_ms(3.0, 0.2),
            compile: DurationDist::log_normal_ms(45.0, 0.25),
            instantiate: DurationDist::log_normal_ms(6.0, 0.3),
        }
    }
}

#[derive(Debug)]
struct WasmFunction {
    template: ServiceTemplate,
    gateway_port: u16,
    desired: u32,
    /// Instances: when each became callable.
    instances: Vec<SimTime>,
}

/// A serverless WebAssembly edge runtime (one gateway, many instances).
pub struct WasmEdgeCluster {
    name: String,
    ip: IpAddr,
    /// Module storage reuses the content-addressed store (a module is a
    /// single-layer artifact).
    pub store: ImageStore,
    timings: WasmTimings,
    rng: SimRng,
    // BTreeMap: `services()` iterates; name order must not depend on hash seed.
    functions: BTreeMap<String, WasmFunction>,
    /// Modules already compiled on this node (first-use cache).
    compiled: HashSet<ImageRef>,
    next_port: u16,
}

impl WasmEdgeCluster {
    pub fn new(
        name: impl Into<String>,
        ip: IpAddr,
        rng: SimRng,
        timings: WasmTimings,
    ) -> WasmEdgeCluster {
        WasmEdgeCluster {
            name: name.into(),
            ip,
            store: ImageStore::new(),
            timings,
            rng,
            functions: BTreeMap::new(),
            compiled: HashSet::new(),
            next_port: 9000,
        }
    }
}

impl ClusterBackend for WasmEdgeCluster {
    fn cluster_name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ClusterKind {
        ClusterKind::Wasm
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        let mut t = now;
        for image in template.images() {
            let reg = registries
                .route(image)
                .ok_or_else(|| ClusterError::ImageUnavailable(image.clone()))?;
            let outcome = reg.pull(t, image, &mut self.store, &mut self.rng).map_err(
                |registry::PullError::UnknownImage(i)| ClusterError::ImageUnavailable(i),
            )?;
            t = outcome.completed_at;
        }
        Ok(t)
    }

    /// Register the function with the gateway: one API call, no artifacts.
    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        if self.functions.contains_key(&template.name) {
            return Err(ClusterError::AlreadyCreated(template.name.clone()));
        }
        for image in template.images() {
            if !self.store.has_image(image) {
                return Err(ClusterError::ImageNotCached(image.clone()));
            }
        }
        let t = now + self.timings.api_call.sample(&mut self.rng);
        let port = self.next_port;
        self.next_port += 1;
        self.functions.insert(
            template.name.clone(),
            WasmFunction {
                template: template.clone(),
                gateway_port: port,
                desired: 0,
                instances: Vec::new(),
            },
        );
        Ok(t)
    }

    /// Instantiate: compile on first use (cached), then millisecond-scale
    /// instantiation — no namespaces, no process spawn.
    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        if !self.functions.contains_key(service) {
            return Err(ClusterError::NotCreated(service.to_string()));
        }
        let accepted = now + self.timings.api_call.sample(&mut self.rng);
        let images: Vec<ImageRef> = self.functions[service].template.images().cloned().collect();
        let mut t = accepted;
        for image in images {
            if self.compiled.insert(image) {
                t += self.timings.compile.sample(&mut self.rng);
            }
        }
        let mut latest = t;
        let live = self.functions[service].instances.len() as u32;
        for _ in live..replicas {
            let ready = t + self.timings.instantiate.sample(&mut self.rng);
            latest = latest.max(ready);
            self.functions
                .get_mut(service)
                .unwrap()
                .instances
                .push(ready);
        }
        // Instances still instantiating gate readiness for the requested
        // count.
        {
            let mut times = self.functions[service].instances.clone();
            times.sort();
            if let Some(&t) = times.get(replicas.saturating_sub(1) as usize) {
                latest = latest.max(t);
            }
        }
        let f = self.functions.get_mut(service).unwrap();
        f.desired = f.desired.max(replicas);
        Ok(ScaleReceipt {
            accepted_at: accepted,
            expected_ready: latest,
        })
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        let f = self
            .functions
            .get_mut(service)
            .ok_or_else(|| ClusterError::UnknownService(service.to_string()))?;
        f.desired = f.desired.min(replicas);
        f.instances.truncate(replicas as usize);
        // Tearing down an instance is effectively free (drop the sandbox).
        Ok(now + self.timings.api_call.sample(&mut self.rng))
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        self.functions
            .remove(service)
            .ok_or_else(|| ClusterError::UnknownService(service.to_string()))?;
        Ok(now + self.timings.api_call.sample(&mut self.rng))
    }

    fn delete_image(&mut self, _now: SimTime, image: &ImageRef) -> bool {
        self.compiled.remove(image);
        self.store.remove_image(image)
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        let Some(f) = self.functions.get(service) else {
            return ServiceStatus::absent();
        };
        ServiceStatus {
            images_cached: f.template.images().all(|i| self.store.has_image(i)),
            created: true,
            desired_replicas: f.desired,
            ready_replicas: f.instances.iter().filter(|&&r| now >= r).count() as u32,
            endpoint: Some(SocketAddr::new(self.ip, f.gateway_port)),
        }
    }

    fn services(&self) -> Vec<String> {
        // BTreeMap keys are already in sorted order.
        self.functions.keys().cloned().collect()
    }

    fn load(&self) -> f64 {
        // Serverless: effectively elastic; report instance pressure.
        (self
            .functions
            .values()
            .map(|f| f.instances.len())
            .sum::<usize>() as f64
            / 256.0)
            .min(1.0)
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        template.images().all(|i| self.store.has_image(i))
    }

    /// A trapped/killed instance is simply re-instantiated by the gateway —
    /// milliseconds, the serverless self-healing story.
    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        let Some(f) = self.functions.get_mut(service) else {
            return CrashOutcome::NoInstance;
        };
        let Some(idx) = f.instances.iter().position(|&r| now >= r) else {
            return CrashOutcome::NoInstance;
        };
        let recovered = now + self.timings.instantiate.sample(&mut self.rng);
        f.instances[idx] = recovered;
        CrashOutcome::Recovering(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::image::synthesize_layers;
    use containers::ImageManifest;
    use registry::{Registry, RegistryProfile};
    use simcore::SimDuration;

    fn registries() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        // a 3 MiB single-layer wasm module
        hub.publish(ImageManifest::new(
            "edge/web.wasm",
            synthesize_layers(9, 3 << 20, 1),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s
    }

    fn cluster() -> WasmEdgeCluster {
        WasmEdgeCluster::new(
            "egs-wasm",
            IpAddr::new(10, 0, 0, 100),
            SimRng::seed_from_u64(1),
            WasmTimings::egs(),
        )
    }

    fn module() -> ServiceTemplate {
        ServiceTemplate::single("web-fn", "edge/web.wasm", 80, DurationDist::zero())
    }

    #[test]
    fn cold_start_is_tens_of_milliseconds() {
        let mut c = cluster();
        let regs = registries();
        let tpl = module();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        // 3 MiB module pulls fast
        assert!(pulled.as_secs_f64() < 1.5, "module pull {pulled}");
        let created = c.create(pulled, &tpl).unwrap();
        let receipt = c.scale_up(created, "web-fn", 1).unwrap();
        let cold_ms = (receipt.expected_ready - created).as_millis_f64();
        assert!(
            (5.0..150.0).contains(&cold_ms),
            "wasm cold start {cold_ms} ms — literature says ms-scale"
        );
        assert!(c.is_ready(receipt.expected_ready, "web-fn"));
    }

    #[test]
    fn compilation_cached_after_first_instance() {
        let mut c = cluster();
        let regs = registries();
        let tpl = module();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let first = c.scale_up(created, "web-fn", 1).unwrap();
        let first_ms = (first.expected_ready - created).as_millis_f64();
        let second = c.scale_up(first.expected_ready, "web-fn", 2).unwrap();
        let second_ms = (second.expected_ready - first.expected_ready).as_millis_f64();
        assert!(
            second_ms < first_ms / 2.0,
            "second instance skips compilation: {second_ms} vs {first_ms}"
        );
    }

    #[test]
    fn lifecycle_and_status() {
        let mut c = cluster();
        let regs = registries();
        let tpl = module();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        assert_eq!(c.status(created, "web-fn").ready_replicas, 0);
        let r = c.scale_up(created, "web-fn", 2).unwrap();
        assert_eq!(c.status(r.expected_ready, "web-fn").ready_replicas, 2);
        let down = c.scale_down(r.expected_ready, "web-fn", 0).unwrap();
        assert_eq!(c.status(down, "web-fn").ready_replicas, 0);
        assert!(
            c.status(down, "web-fn").created,
            "function stays registered"
        );
        let gone = c.remove(down, "web-fn").unwrap();
        assert!(!c.status(gone, "web-fn").created);
    }

    #[test]
    fn create_requires_module() {
        let mut c = cluster();
        let err = c.create(SimTime::ZERO, &module()).unwrap_err();
        assert!(matches!(err, ClusterError::ImageNotCached(_)));
    }

    #[test]
    fn wasm_beats_docker_cold_start_by_an_order_of_magnitude() {
        // The future-work hypothesis: wasm instantiation ≪ container start.
        let mut wasm = cluster();
        let regs = registries();
        let tpl = module();
        let pulled = wasm.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = wasm.create(pulled, &tpl).unwrap();
        let receipt = wasm.scale_up(created, "web-fn", 1).unwrap();
        let wasm_ms = (receipt.expected_ready - created).as_millis_f64();

        let rng = SimRng::seed_from_u64(2);
        let mut docker = crate::docker::DockerCluster::new(
            "egs-docker",
            IpAddr::new(10, 0, 0, 101),
            containers::Runtime::egs(rng.stream("rt")),
            rng.stream("d"),
        );
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 141_000_000, 6),
        ));
        let mut regs2 = RegistrySet::new();
        regs2.add(hub);
        let tpl2 = ServiceTemplate::single(
            "web-ct",
            "nginx:1.23.2",
            80,
            DurationDist::log_normal_ms(110.0, 0.2),
        );
        let pulled = docker.pull(SimTime::ZERO, &tpl2, &regs2).unwrap();
        let created = docker.create(pulled, &tpl2).unwrap();
        let receipt = docker.scale_up(created, "web-ct", 1).unwrap();
        let docker_ms = (receipt.expected_ready - created).as_millis_f64();

        assert!(
            docker_ms > wasm_ms * 4.0,
            "container {docker_ms} ms vs wasm {wasm_ms} ms"
        );
    }

    #[test]
    fn instance_teardown_truncates_newest() {
        let mut c = cluster();
        let regs = registries();
        let tpl = module();
        let pulled = c.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let r = c.scale_up(created, "web-fn", 3).unwrap();
        let later = r.expected_ready + SimDuration::from_secs(1);
        c.scale_down(later, "web-fn", 1).unwrap();
        assert_eq!(c.status(later, "web-fn").ready_replicas, 1);
        // scale back up re-instantiates quickly (compile cached)
        let r2 = c.scale_up(later, "web-fn", 3).unwrap();
        assert!((r2.expected_ready - later).as_millis_f64() < 60.0);
    }
}
