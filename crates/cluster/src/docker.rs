//! A Docker-like single-host backend.
//!
//! Deployment phases map exactly to the paper's definitions (Fig. 4): *Create*
//! creates the container(s) via the engine API + containerd; *Scale Up* starts
//! them. There is no control plane between the controller and containerd, so
//! a started container is connectable as soon as its app opens the port —
//! which is why Docker's scale-up lands well under one second (Fig. 11).

use containers::{ContainerId, ContainerSpec, ContainerState, Runtime};
use registry::RegistrySet;
use simcore::{DetHashMap, DurationDist, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::api::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceSnapshot,
    ServiceStatus,
};
use crate::template::ServiceTemplate;

/// One replica of a service: the containers backing it and the host port
/// published for it (`docker run -p`), so each replica is independently
/// addressable — what makes Local-Scheduler instance selection meaningful.
#[derive(Debug, Clone)]
struct Replica {
    containers: Vec<ContainerId>,
    host_port: u16,
    started: bool,
    /// When this replica's slowest container opens its port (valid once
    /// `started`).
    ready_at: SimTime,
}

#[derive(Debug)]
struct DockerService {
    template: ServiceTemplate,
    desired: u32,
    replicas: Vec<Replica>,
}

/// A Docker engine on one host.
pub struct DockerCluster {
    name: String,
    ip: IpAddr,
    pub runtime: Runtime,
    rng: SimRng,
    /// Engine API latency per call (CLI/SDK → dockerd → containerd).
    api_call: DurationDist,
    // Probed several times per packet-in (status/readiness checks); the
    // deterministic hasher keeps lookups cheap and `services()` sorts before
    // exposing names, so order never depends on map internals.
    services: DetHashMap<String, DockerService>,
    next_host_port: u16,
    /// Mutation counter backing [`ClusterBackend::mutation_epoch`]: bumped
    /// by every `&mut` backend operation so controller-side snapshot caches
    /// can tell "nothing changed" apart from "re-query needed".
    epoch: u64,
}

impl DockerCluster {
    pub fn new(
        name: impl Into<String>,
        ip: IpAddr,
        runtime: Runtime,
        rng: SimRng,
    ) -> DockerCluster {
        DockerCluster {
            name: name.into(),
            ip,
            runtime,
            rng,
            api_call: DurationDist::log_normal_ms(18.0, 0.25),
            services: DetHashMap::default(),
            next_host_port: 8000,
            epoch: 0,
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_host_port;
        self.next_host_port += 1;
        p
    }

    fn service(&self, name: &str) -> Result<&DockerService, ClusterError> {
        self.services
            .get(name)
            .ok_or_else(|| ClusterError::UnknownService(name.to_string()))
    }

    /// Create the containers of one replica, engine-API + containerd chained
    /// sequentially starting at `now`. Returns the replica and the completion
    /// instant.
    fn create_replica(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<(Replica, SimTime), ClusterError> {
        let mut t = now;
        let mut containers = Vec::with_capacity(template.containers.len());
        for ct in &template.containers {
            t += self.api_call.sample(&mut self.rng);
            let spec = ContainerSpec {
                name: format!("{}-{}", template.name, ct.name),
                image: ct.image.clone(),
                app_init: ct.app_init.sample(&mut self.rng),
                cpu_millis: ct.cpu_millis,
                mem_bytes: ct.mem_bytes,
            };
            let (id, done) = self.runtime.create(t, spec).map_err(|e| match e {
                containers::RuntimeError::ImageNotPresent(i) => ClusterError::ImageNotCached(i),
                containers::RuntimeError::InsufficientResources { what } => {
                    ClusterError::InsufficientResources(what)
                }
                other => panic!("unexpected runtime error during create: {other}"),
            })?;
            t = done;
            containers.push(id);
        }
        let host_port = self.alloc_port();
        Ok((
            Replica {
                containers,
                host_port,
                started: false,
                ready_at: SimTime::FAR_FUTURE,
            },
            t,
        ))
    }

    /// Start every container of a replica; returns `(api_returned, ready)`:
    /// `docker start` returns once the process is spawned, the service is
    /// connectable once every container's app opened its port. Fails when
    /// the node is out of resources.
    fn start_replica(
        &mut self,
        now: SimTime,
        replica: &mut Replica,
    ) -> Result<(SimTime, SimTime), ClusterError> {
        let mut t = now;
        let mut ready = now;
        for &id in &replica.containers {
            t += self.api_call.sample(&mut self.rng);
            let (running_at, ready_at) = self.runtime.start(t, id).map_err(|e| match e {
                containers::RuntimeError::InsufficientResources { what } => {
                    ClusterError::InsufficientResources(what)
                }
                other => panic!("unexpected runtime error during start: {other}"),
            })?;
            t = running_at;
            ready = ready.max(ready_at);
        }
        replica.started = true;
        replica.ready_at = ready;
        Ok((t, ready))
    }
}

impl ClusterBackend for DockerCluster {
    fn cluster_name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ClusterKind {
        ClusterKind::Docker
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        self.epoch += 1;
        // Images pull sequentially (docker pull a; docker pull b), skipping
        // cached ones.
        let mut t = now;
        for image in template.images() {
            let reg = registries
                .route(image)
                .ok_or_else(|| ClusterError::ImageUnavailable(image.clone()))?;
            let outcome = reg
                .pull(t, image, &mut self.runtime.store, &mut self.rng)
                .map_err(|registry::PullError::UnknownImage(i)| {
                    ClusterError::ImageUnavailable(i)
                })?;
            t = outcome.completed_at;
        }
        Ok(t)
    }

    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        self.epoch += 1;
        if self.services.contains_key(&template.name) {
            return Err(ClusterError::AlreadyCreated(template.name.clone()));
        }
        let (replica, done) = self.create_replica(now, template)?;
        self.services.insert(
            template.name.clone(),
            DockerService {
                template: template.clone(),
                desired: 0,
                replicas: vec![replica],
            },
        );
        Ok(done)
    }

    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        self.epoch += 1;
        if !self.services.contains_key(service) {
            return Err(ClusterError::NotCreated(service.to_string()));
        }
        let template = self.services[service].template.clone();
        let current = self.services[service].replicas.len() as u32;

        // Create any missing replica container sets first (docker run path).
        let mut t = now;
        for _ in current..replicas {
            let (replica, done) = self.create_replica(t, &template)?;
            t = done;
            self.services
                .get_mut(service)
                .unwrap()
                .replicas
                .push(replica);
        }

        // Start all not-yet-started replicas up to the desired count.
        let mut accepted = t;
        let mut ready = t;
        let mut idle: Vec<usize> = Vec::new();
        {
            let svc = self.services.get_mut(service).unwrap();
            svc.desired = svc.desired.max(replicas);
            for (i, r) in svc.replicas.iter().enumerate() {
                if !r.started && (i as u32) < replicas {
                    idle.push(i);
                }
            }
        }
        for i in idle {
            let mut replica = self.services.get_mut(service).unwrap().replicas[i].clone();
            let (r_accepted, r_ready) = self.start_replica(t, &mut replica)?;
            accepted = accepted.max(r_accepted);
            ready = ready.max(r_ready);
            self.services.get_mut(service).unwrap().replicas[i] = replica;
        }
        // Replicas already started but still warming up gate readiness too
        // (a repeated scale-up while the first is in flight must not claim
        // instant readiness).
        for r in self.services[service]
            .replicas
            .iter()
            .take(replicas as usize)
        {
            if r.started {
                ready = ready.max(r.ready_at);
            }
        }
        Ok(ScaleReceipt {
            accepted_at: accepted,
            expected_ready: ready,
        })
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        self.epoch += 1;
        if !self.services.contains_key(service) {
            return Err(ClusterError::UnknownService(service.to_string()));
        }
        let svc = self.services.get_mut(service).unwrap();
        svc.desired = svc.desired.min(replicas);
        let to_stop: Vec<Vec<ContainerId>> = svc
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, r)| r.started && (*i as u32) >= replicas)
            .map(|(_, r)| r.containers.clone())
            .collect();
        for (i, r) in svc.replicas.iter_mut().enumerate() {
            if (i as u32) >= replicas {
                r.started = false;
            }
        }
        let mut t = now;
        for containers in to_stop {
            for id in containers {
                if self.runtime.get(id).map(|c| c.state_at(t)) == Some(ContainerState::Running) {
                    t = self.runtime.stop(t, id).expect("stop running container");
                }
            }
        }
        Ok(t)
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        self.epoch += 1;
        let svc = self
            .services
            .remove(service)
            .ok_or_else(|| ClusterError::UnknownService(service.to_string()))?;
        let mut t = now;
        for replica in &svc.replicas {
            for &id in &replica.containers {
                if self.runtime.get(id).map(|c| c.state_at(t)) == Some(ContainerState::Running) {
                    t = self.runtime.stop(t, id).expect("stop running container");
                }
                if matches!(
                    self.runtime.get(id).map(|c| c.state_at(t)),
                    Some(ContainerState::Created | ContainerState::Stopped)
                ) {
                    t = self
                        .runtime
                        .remove(t, id)
                        .expect("remove stopped container");
                }
            }
        }
        Ok(t)
    }

    fn delete_image(&mut self, _now: SimTime, image: &containers::ImageRef) -> bool {
        self.epoch += 1;
        self.runtime.store.remove_image(image)
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        let Ok(svc) = self.service(service) else {
            return ServiceStatus::absent();
        };
        let images_cached = svc
            .template
            .images()
            .all(|i| self.runtime.store.has_image(i));
        // Single pass, no intermediate Vec: `status` sits on the controller's
        // per-packet-in path, so it must stay allocation-free.
        let mut ready = 0u32;
        let mut first_ready_port: Option<u16> = None;
        for r in &svc.replicas {
            if r.started
                && r.containers
                    .iter()
                    .all(|&id| self.runtime.is_port_open(now, id))
            {
                ready += 1;
                first_ready_port.get_or_insert(r.host_port);
            }
        }
        ServiceStatus {
            images_cached,
            created: true,
            desired_replicas: svc.desired,
            ready_replicas: ready,
            endpoint: Some(SocketAddr::new(
                self.ip,
                first_ready_port.unwrap_or(svc.replicas[0].host_port),
            )),
        }
    }

    fn replica_endpoints(&self, now: SimTime, service: &str) -> Vec<SocketAddr> {
        let mut out = Vec::new();
        self.replica_endpoints_into(now, service, &mut out);
        out
    }

    fn service_snapshot(
        &self,
        now: SimTime,
        service: &str,
        endpoints: &mut Vec<SocketAddr>,
    ) -> Option<ServiceSnapshot> {
        let Ok(svc) = self.service(service) else {
            // Absence is stable until a mutation (create) bumps the epoch.
            return Some(ServiceSnapshot {
                status: ServiceStatus::absent(),
                stable_until: SimTime::FAR_FUTURE,
                epoch: self.epoch,
            });
        };
        let images_cached = svc
            .template
            .images()
            .all(|i| self.runtime.store.has_image(i));
        // One pass over the replicas: readiness, ready endpoints, and the
        // earliest future instant any container's observable state can flip
        // without a mutation (which bounds the snapshot's validity).
        let mut ready = 0u32;
        let mut first_ready_port: Option<u16> = None;
        let mut stable_until = SimTime::FAR_FUTURE;
        for r in &svc.replicas {
            for &id in &r.containers {
                if let Some(t) = self.runtime.port_transition_after(now, id) {
                    stable_until = stable_until.min(t);
                }
            }
            if r.started
                && r.containers
                    .iter()
                    .all(|&id| self.runtime.is_port_open(now, id))
            {
                ready += 1;
                first_ready_port.get_or_insert(r.host_port);
                endpoints.push(SocketAddr::new(self.ip, r.host_port));
            }
        }
        Some(ServiceSnapshot {
            status: ServiceStatus {
                images_cached,
                created: true,
                desired_replicas: svc.desired,
                ready_replicas: ready,
                endpoint: Some(SocketAddr::new(
                    self.ip,
                    first_ready_port.unwrap_or(svc.replicas[0].host_port),
                )),
            },
            stable_until,
            epoch: self.epoch,
        })
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.epoch)
    }

    fn replica_endpoints_into(&self, now: SimTime, service: &str, out: &mut Vec<SocketAddr>) {
        let Ok(svc) = self.service(service) else {
            return;
        };
        out.extend(
            svc.replicas
                .iter()
                .filter(|r| {
                    r.started
                        && r.containers
                            .iter()
                            .all(|&id| self.runtime.is_port_open(now, id))
                })
                .map(|r| SocketAddr::new(self.ip, r.host_port)),
        );
    }

    fn services(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    fn load(&self) -> f64 {
        self.runtime.cpu_utilization()
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        template.images().all(|i| self.runtime.store.has_image(i))
    }

    /// Without a restart policy the engine does nothing: the replica stays
    /// down until something (the controller) scales it up again.
    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        self.epoch += 1;
        let Some(svc) = self.services.get(service) else {
            return CrashOutcome::NoInstance;
        };
        // Only a replica whose containers are all actually Running can
        // crash; one still starting is owned by an in-flight scale-up.
        let victim = svc.replicas.iter().position(|r| {
            r.started
                && r.containers.iter().all(|&id| {
                    self.runtime.get(id).map(|c| c.state_at(now))
                        == Some(containers::ContainerState::Running)
                })
        });
        let Some(idx) = victim else {
            return CrashOutcome::NoInstance;
        };
        let svc = self.services.get_mut(service).unwrap();
        svc.replicas[idx].started = false;
        svc.replicas[idx].ready_at = SimTime::FAR_FUTURE;
        let ids = svc.replicas[idx].containers.clone();
        for id in ids {
            self.runtime
                .crash(now, id)
                .expect("victim containers are running");
        }
        CrashOutcome::Down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::image::synthesize_layers;
    use containers::ImageManifest;
    use registry::{Registry, RegistryProfile};

    fn registries() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 141_000_000, 6),
        ));
        hub.publish(ImageManifest::new(
            "josefhammer/env-writer-py",
            synthesize_layers(2, 46_000_000, 1),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s
    }

    fn cluster() -> DockerCluster {
        let rng = SimRng::seed_from_u64(7);
        DockerCluster::new(
            "egs-docker",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("runtime")),
            rng.stream("docker"),
        )
    }

    fn nginx() -> ServiceTemplate {
        ServiceTemplate::single(
            "nginx-svc",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(110.0),
        )
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn full_phase_pipeline() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();

        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        assert!(pulled > t0(), "cold pull takes time");

        let created = c.create(pulled, &tpl).unwrap();
        assert!(created > pulled);
        let st = c.status(created, "nginx-svc");
        assert!(st.created && st.images_cached);
        assert_eq!(st.ready_replicas, 0);

        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        assert!(ready > created);
        assert!(!c.is_ready(created, "nginx-svc"));
        assert!(c.is_ready(ready, "nginx-svc"));

        // Docker scale-up alone (start of a created container) is sub-second
        // on the EGS — the core Fig. 11 property.
        let scale_up_ms = (ready - created).as_millis_f64();
        assert!(
            (250.0..1000.0).contains(&scale_up_ms),
            "docker scale-up took {scale_up_ms} ms"
        );
    }

    #[test]
    fn cached_pull_is_instant() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let again = c.pull(pulled, &tpl, &regs).unwrap();
        assert_eq!(again, pulled);
    }

    #[test]
    fn scale_up_without_create_fails() {
        let mut c = cluster();
        assert_eq!(
            c.scale_up(t0(), "ghost", 1),
            Err(ClusterError::NotCreated("ghost".into()))
        );
    }

    #[test]
    fn create_without_image_fails() {
        let mut c = cluster();
        let err = c.create(t0(), &nginx()).unwrap_err();
        assert!(matches!(err, ClusterError::ImageNotCached(_)));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        c.create(pulled, &tpl).unwrap();
        assert!(matches!(
            c.create(pulled, &tpl),
            Err(ClusterError::AlreadyCreated(_))
        ));
    }

    #[test]
    fn two_container_service_ready_when_both_are() {
        let mut c = cluster();
        let regs = registries();
        let tpl = ServiceTemplate {
            name: "nginx-py".into(),
            port: 80,
            scheduler_name: None,
            requirements: crate::capacity::DeploymentRequirements::none(),
            containers: vec![
                crate::template::ContainerTemplate {
                    name: "nginx".into(),
                    image: containers::ImageRef::new("nginx:1.23.2"),
                    app_init: DurationDist::constant_ms(110.0),
                    cpu_millis: 250,
                    mem_bytes: 128 << 20,
                },
                crate::template::ContainerTemplate {
                    name: "py".into(),
                    image: containers::ImageRef::new("josefhammer/env-writer-py"),
                    app_init: DurationDist::constant_ms(350.0),
                    cpu_millis: 250,
                    mem_bytes: 128 << 20,
                },
            ],
        };
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-py", 1).unwrap().expected_ready;
        // Both containers must be ready; the slower (py) gates.
        assert!(c.is_ready(ready, "nginx-py"));
        let st = c.status(ready, "nginx-py");
        assert_eq!(st.ready_replicas, 1);
    }

    #[test]
    fn scale_down_stops_and_status_reflects() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        assert!(c.is_ready(ready, "nginx-svc"));
        let down = c.scale_down(ready, "nginx-svc", 0).unwrap();
        assert!(!c.is_ready(down, "nginx-svc"));
        // service object still exists (scale to zero, not remove)
        assert!(c.status(down, "nginx-svc").created);
        // can scale back up
        let ready2 = c.scale_up(down, "nginx-svc", 1).unwrap().expected_ready;
        assert!(c.is_ready(ready2, "nginx-svc"));
    }

    #[test]
    fn remove_deletes_service() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        let gone = c.remove(ready, "nginx-svc").unwrap();
        assert!(!c.status(gone, "nginx-svc").created);
        assert!(c.services().is_empty());
        // image still cached after remove (paper: images survive service removal)
        assert!(c
            .runtime
            .store
            .has_image(&containers::ImageRef::new("nginx:1.23.2")));
    }

    #[test]
    fn multiple_replicas() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let ready = c.scale_up(created, "nginx-svc", 3).unwrap().expected_ready;
        assert_eq!(c.status(ready, "nginx-svc").ready_replicas, 3);
        let down = c.scale_down(ready, "nginx-svc", 1).unwrap();
        assert_eq!(c.status(down, "nginx-svc").ready_replicas, 1);
    }

    #[test]
    fn endpoint_is_stable_per_service() {
        let mut c = cluster();
        let regs = registries();
        let tpl = nginx();
        let pulled = c.pull(t0(), &tpl, &regs).unwrap();
        let created = c.create(pulled, &tpl).unwrap();
        let e1 = c.status(created, "nginx-svc").endpoint.unwrap();
        let ready = c.scale_up(created, "nginx-svc", 1).unwrap().expected_ready;
        let e2 = c.status(ready, "nginx-svc").endpoint.unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1.ip, IpAddr::new(10, 0, 0, 100));
    }

    #[test]
    fn unknown_image_unroutable() {
        let mut c = cluster();
        let regs = RegistrySet::new();
        let err = c.pull(t0(), &nginx(), &regs).unwrap_err();
        assert!(matches!(err, ClusterError::ImageUnavailable(_)));
    }
}
