//! Property-based tests: any value built from the supported model must
//! survive an emit → parse round trip unchanged.

use proptest::prelude::*;
use yamlite::{parse, to_string, Yaml};

/// Strategy for scalar values (floats restricted to exactly-representable
/// halves so equality comparisons are meaningful after formatting).
fn scalar() -> impl Strategy<Value = Yaml> {
    prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        any::<i64>().prop_map(Yaml::Int),
        (-1000i32..1000).prop_map(|n| Yaml::Float(n as f64 / 2.0)),
        string_value().prop_map(Yaml::Str),
    ]
}

/// Printable strings incl. the troublemakers: colons, hashes, quotes, digits.
fn string_value() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 :#'\"_./-]{0,24}",
        Just("true".to_string()),
        Just("null".to_string()),
        Just("123".to_string()),
        Just("1.5".to_string()),
        Just("nginx:1.23.2".to_string()),
        Just("- leading dash".to_string()),
    ]
}

/// Keys: non-empty, no control characters (keys with dots are fine — only the
/// path helpers treat dots specially, not the document model).
fn key() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9._/-]{0,15}"
}

fn yaml_value() -> impl Strategy<Value = Yaml> {
    scalar().prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Yaml::Seq),
            prop::collection::vec((key(), inner), 0..5).prop_map(|pairs| {
                // deduplicate keys, keeping first occurrence (parser rejects dups)
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        out.push((k, v));
                    }
                }
                Yaml::Map(out)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_parse_roundtrip(value in yaml_value()) {
        let emitted = to_string(&value);
        let reparsed = parse(&emitted)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n--- emitted ---\n{emitted}"));
        prop_assert_eq!(reparsed, value, "emitted:\n{}", emitted);
    }

    #[test]
    fn parser_never_panics_on_garbage(src in "[ a-z0-9:#\\-\\n\"'\\[\\]{},.]{0,200}") {
        let _ = parse(&src); // must return Ok or Err, never panic
    }

    #[test]
    fn at_path_is_consistent_with_get(
        k1 in "[a-z]{1,8}",
        k2 in "[a-z]{1,8}",
        v in -1000i64..1000,
    ) {
        let mut inner = Yaml::map();
        inner.insert(k2.clone(), Yaml::Int(v));
        let mut y = Yaml::map();
        y.insert(k1.clone(), inner);
        let path = format!("{k1}.{k2}");
        prop_assert_eq!(y.at(&path), Some(&Yaml::Int(v)));
        prop_assert_eq!(y.get(&k1).unwrap().get(&k2), Some(&Yaml::Int(v)));
    }

    #[test]
    fn set_path_then_at_reads_back(
        k1 in "[a-z]{1,8}",
        k2 in "[a-z]{1,8}",
        k3 in "[a-z]{1,8}",
        v in any::<i64>(),
    ) {
        let mut y = Yaml::map();
        let path = format!("{k1}.{k2}.{k3}");
        prop_assert!(y.set_path(&path, Yaml::Int(v)));
        prop_assert_eq!(y.at(&path), Some(&Yaml::Int(v)));
    }
}
