//! Block-style YAML parser for the subset described in the crate docs.
//!
//! The parser is line-oriented: the source is first cut into `(indent, text)`
//! records with comments stripped, then a recursive-descent pass assembles
//! block mappings and sequences by comparing indentation levels. Inline
//! sequence entries (`- name: nginx`) are handled by re-interpreting the rest
//! of the line as a virtual line indented past the dash — the same trick the
//! YAML spec's indentation rules describe.

use std::fmt;

use crate::value::Yaml;

/// A parse failure, with the 1-based source line where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parse a single YAML document. An empty (or comment-only) input parses to
/// [`Yaml::Null`].
pub fn parse(src: &str) -> Result<Yaml, ParseError> {
    let mut docs = parse_all(src)?;
    match docs.len() {
        0 => Ok(Yaml::Null),
        1 => Ok(docs.pop().unwrap()),
        n => err(1, format!("expected a single document, found {n}")),
    }
}

/// Parse a `---`-separated multi-document stream.
pub fn parse_all(src: &str) -> Result<Vec<Yaml>, ParseError> {
    let mut docs = Vec::new();
    let mut chunk: Vec<Line> = Vec::new();
    let mut saw_separator = false;

    for (idx, raw) in src.lines().enumerate() {
        let no = idx + 1;
        let trimmed = raw.trim_end();
        if trimmed == "---" {
            if !chunk.is_empty() || saw_separator {
                docs.push(parse_lines(std::mem::take(&mut chunk))?);
            }
            saw_separator = true;
            continue;
        }
        if let Some(line) = prepare_line(trimmed, no)? {
            chunk.push(line);
        }
    }
    if !chunk.is_empty() {
        docs.push(parse_lines(chunk)?);
    } else if saw_separator && docs.is_empty() {
        docs.push(Yaml::Null);
    }
    Ok(docs)
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    no: usize,
}

/// Strip comments and measure indentation; returns `None` for blank /
/// comment-only lines.
fn prepare_line(raw: &str, no: usize) -> Result<Option<Line>, ParseError> {
    let mut indent = 0;
    for ch in raw.chars() {
        match ch {
            ' ' => indent += 1,
            '\t' => return err(no, "tab characters are not allowed in indentation"),
            _ => break,
        }
    }
    let body = &raw[indent..];
    let body = strip_comment(body);
    let body = body.trim_end();
    if body.is_empty() {
        return Ok(None);
    }
    Ok(Some(Line {
        indent,
        text: body.to_string(),
        no,
    }))
}

/// Remove a trailing `# comment`, respecting quoted strings. A `#` only starts
/// a comment at the beginning of the content or after whitespace.
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => {
                // skip escaped quotes inside double-quoted strings
                if i > 0 && bytes[i - 1] == b'\\' && in_double {
                } else {
                    in_double = !in_double;
                }
            }
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1] == b' ') => {
                return &s[..i];
            }
            _ => {}
        }
        i += 1;
    }
    s
}

fn parse_lines(lines: Vec<Line>) -> Result<Yaml, ParseError> {
    if lines.is_empty() {
        return Ok(Yaml::Null);
    }
    let mut p = Parser { lines, pos: 0 };
    let root_indent = p.lines[0].indent;
    let v = p.parse_node(root_indent)?;
    if p.pos < p.lines.len() {
        let l = &p.lines[p.pos];
        return err(
            l.no,
            format!(
                "unexpected content at indent {} after document root",
                l.indent
            ),
        );
    }
    Ok(v)
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    /// Parse the block starting at the current line, which must sit at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Yaml, ParseError> {
        let line = self.cur().expect("parse_node at EOF");
        debug_assert_eq!(line.indent, indent);
        if is_seq_entry(&line.text) {
            self.parse_seq(indent)
        } else if find_mapping_colon(&line.text).is_some() {
            self.parse_map(indent)
        } else {
            // A bare scalar document (e.g. `42`).
            let l = self.lines[self.pos].clone();
            self.pos += 1;
            parse_scalar_or_flow(&l.text, l.no)
        }
    }

    fn parse_map(&mut self, indent: usize) -> Result<Yaml, ParseError> {
        let mut map: Vec<(String, Yaml)> = Vec::new();
        while let Some(line) = self.cur() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return err(line.no, "unexpected deeper indentation in mapping");
            }
            if is_seq_entry(&line.text) {
                return err(line.no, "sequence entry inside mapping at same indent");
            }
            let line = self.lines[self.pos].clone();
            let Some(colon) = find_mapping_colon(&line.text) else {
                return err(
                    line.no,
                    format!("expected `key:` line, got `{}`", line.text),
                );
            };
            let key = parse_key(line.text[..colon].trim(), line.no)?;
            if map.iter().any(|(k, _)| *k == key) {
                return err(line.no, format!("duplicate mapping key `{key}`"));
            }
            let rest = line.text[colon + 1..].trim().to_string();
            self.pos += 1;
            let value = if rest.is_empty() {
                // Nested block or explicit null.
                match self.cur() {
                    Some(next) if next.indent > indent => {
                        let ni = next.indent;
                        self.parse_node(ni)?
                    }
                    // `key:` followed by a *sequence at the same indent* is
                    // valid YAML (common in hand-written manifests).
                    Some(next) if next.indent == indent && is_seq_entry(&next.text) => {
                        self.parse_seq(indent)?
                    }
                    _ => Yaml::Null,
                }
            } else {
                parse_scalar_or_flow(&rest, line.no)?
            };
            map.push((key, value));
        }
        Ok(Yaml::Map(map))
    }

    fn parse_seq(&mut self, indent: usize) -> Result<Yaml, ParseError> {
        let mut seq = Vec::new();
        while let Some(line) = self.cur() {
            if line.indent != indent || !is_seq_entry(&line.text) {
                if line.indent > indent {
                    return err(line.no, "unexpected deeper indentation in sequence");
                }
                break;
            }
            let line = self.lines[self.pos].clone();
            let rest = line.text[1..].trim_start();
            if rest.is_empty() {
                // `-` alone: value is the nested block.
                self.pos += 1;
                let value = match self.cur() {
                    Some(next) if next.indent > indent => {
                        let ni = next.indent;
                        self.parse_node(ni)?
                    }
                    _ => Yaml::Null,
                };
                seq.push(value);
            } else {
                // Inline entry: re-interpret the remainder as a virtual line
                // indented past the dash, then parse a node there. Continuation
                // lines (`  image: ...`) already sit at that indent.
                let offset = line.text.len() - rest.len();
                let virt_indent = indent + offset;
                self.lines[self.pos] = Line {
                    indent: virt_indent,
                    text: rest.to_string(),
                    no: line.no,
                };
                seq.push(self.parse_node(virt_indent)?);
            }
        }
        Ok(Yaml::Seq(seq))
    }
}

/// Does this line open a sequence entry (`- item` or a lone `-`)?
fn is_seq_entry(text: &str) -> bool {
    text == "-" || text.starts_with("- ")
}

/// Find the colon that separates key from value: the first `:` outside quotes
/// that is followed by a space or ends the line.
fn find_mapping_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single && (i == 0 || bytes[i - 1] != b'\\') => in_double = !in_double,
            b':' if !in_single && !in_double && (i + 1 == bytes.len() || bytes[i + 1] == b' ') => {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

fn parse_key(raw: &str, no: usize) -> Result<String, ParseError> {
    if raw.is_empty() {
        return err(no, "empty mapping key");
    }
    // Mapping keys are stored as strings; non-string scalars (e.g. `80:`)
    // keep their literal spelling. Collection keys are not part of the
    // supported subset.
    match parse_scalar_or_flow(raw, no)? {
        Yaml::Str(s) => Ok(s),
        Yaml::Null => Ok("null".to_string()),
        Yaml::Bool(b) => Ok(b.to_string()),
        Yaml::Int(i) => Ok(i.to_string()),
        Yaml::Float(f) => Ok(f.to_string()),
        Yaml::Seq(_) | Yaml::Map(_) => err(no, "collection mapping keys are not supported"),
    }
}

/// Parse a scalar or a one-line flow collection.
fn parse_scalar_or_flow(text: &str, no: usize) -> Result<Yaml, ParseError> {
    let t = text.trim();
    if t.starts_with('[') {
        if !t.ends_with(']') {
            return err(no, "unterminated flow sequence");
        }
        let inner = &t[1..t.len() - 1];
        let mut seq = Vec::new();
        for part in split_flow_items(inner, no)? {
            if !part.trim().is_empty() {
                seq.push(parse_scalar_or_flow(part.trim(), no)?);
            }
        }
        return Ok(Yaml::Seq(seq));
    }
    if t.starts_with('{') {
        if !t.ends_with('}') {
            return err(no, "unterminated flow mapping");
        }
        let inner = &t[1..t.len() - 1];
        let mut map = Vec::new();
        for part in split_flow_items(inner, no)? {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(colon) = find_mapping_colon(part).or_else(|| part.find(':')) else {
                return err(no, format!("flow mapping entry without `:`: `{part}`"));
            };
            let key = parse_key(part[..colon].trim(), no)?;
            let value = parse_scalar_or_flow(part[colon + 1..].trim(), no)?;
            map.push((key, value));
        }
        return Ok(Yaml::Map(map));
    }
    parse_scalar(t, no)
}

/// Split the inside of a flow collection on top-level commas.
fn split_flow_items(inner: &str, no: usize) -> Result<Vec<&str>, ParseError> {
    let bytes = inner.as_bytes();
    let mut items = Vec::new();
    let mut depth = 0i32;
    let mut in_single = false;
    let mut in_double = false;
    let mut start = 0;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single && (i == 0 || bytes[i - 1] != b'\\') => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth -= 1,
            b',' if depth == 0 && !in_single && !in_double => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return err(no, "unbalanced brackets in flow collection");
    }
    items.push(&inner[start..]);
    Ok(items)
}

fn parse_scalar(t: &str, no: usize) -> Result<Yaml, ParseError> {
    if t.is_empty() {
        return Ok(Yaml::Null);
    }
    if let Some(stripped) = t.strip_prefix('"') {
        let Some(body) = stripped.strip_suffix('"') else {
            return err(no, "unterminated double-quoted string");
        };
        return Ok(Yaml::Str(unescape_double(body, no)?));
    }
    if let Some(stripped) = t.strip_prefix('\'') {
        let Some(body) = stripped.strip_suffix('\'') else {
            return err(no, "unterminated single-quoted string");
        };
        return Ok(Yaml::Str(body.replace("''", "'")));
    }
    match t {
        "~" | "null" | "Null" | "NULL" => return Ok(Yaml::Null),
        "true" | "True" | "TRUE" => return Ok(Yaml::Bool(true)),
        "false" | "False" | "FALSE" => return Ok(Yaml::Bool(false)),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Yaml::Int(i));
    }
    if looks_like_float(t) {
        if let Ok(f) = t.parse::<f64>() {
            return Ok(Yaml::Float(f));
        }
    }
    Ok(Yaml::Str(t.to_string()))
}

/// Only treat a token as a float if it has canonical float shape — `1.23`,
/// `-4.5e6`. Version-ish strings like `1.23.2` must stay strings.
fn looks_like_float(t: &str) -> bool {
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    for (i, c) in t.char_indices() {
        match c {
            '0'..='9' => seen_digit = true,
            '-' | '+' if i == 0 => {}
            '-' | '+' => {
                // only allowed right after the exponent marker
                let prev = t.as_bytes()[i - 1];
                if prev != b'e' && prev != b'E' {
                    return false;
                }
            }
            '.' if !seen_dot && !seen_exp => seen_dot = true,
            'e' | 'E' if seen_digit && !seen_exp => seen_exp = true,
            _ => return false,
        }
    }
    seen_digit && (seen_dot || seen_exp)
}

fn unescape_double(s: &str, no: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('0') => out.push('\0'),
            Some(other) => return err(no, format!("unsupported escape `\\{other}`")),
            None => return err(no, "dangling backslash in double-quoted string"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_resolve() {
        assert_eq!(parse("42").unwrap(), Yaml::Int(42));
        assert_eq!(parse("-7").unwrap(), Yaml::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Yaml::Float(2.5));
        assert_eq!(parse("true").unwrap(), Yaml::Bool(true));
        assert_eq!(parse("null").unwrap(), Yaml::Null);
        assert_eq!(parse("~").unwrap(), Yaml::Null);
        assert_eq!(parse("hello world").unwrap(), Yaml::str("hello world"));
    }

    #[test]
    fn version_strings_stay_strings() {
        assert_eq!(parse("1.23.2").unwrap(), Yaml::str("1.23.2"));
        assert_eq!(
            parse("image: nginx:1.23.2").unwrap().at("image"),
            Some(&Yaml::str("nginx:1.23.2"))
        );
    }

    #[test]
    fn quoted_scalars() {
        assert_eq!(parse("\"42\"").unwrap(), Yaml::str("42"));
        assert_eq!(parse("'it''s'").unwrap(), Yaml::str("it's"));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Yaml::str("a\nb"));
    }

    #[test]
    fn simple_map() {
        let y = parse("a: 1\nb: two\nc:\n").unwrap();
        assert_eq!(y.get("a"), Some(&Yaml::Int(1)));
        assert_eq!(y.get("b"), Some(&Yaml::str("two")));
        assert_eq!(y.get("c"), Some(&Yaml::Null));
    }

    #[test]
    fn nested_map() {
        let y = parse("outer:\n  inner:\n    k: v\n").unwrap();
        assert_eq!(y.at("outer.inner.k"), Some(&Yaml::str("v")));
    }

    #[test]
    fn block_sequence() {
        let y = parse("- 1\n- 2\n- three\n").unwrap();
        assert_eq!(
            y,
            Yaml::Seq(vec![Yaml::Int(1), Yaml::Int(2), Yaml::str("three")])
        );
    }

    #[test]
    fn seq_of_maps_inline_dash() {
        let y =
            parse("containers:\n  - name: nginx\n    image: nginx:1.23.2\n  - name: py\n").unwrap();
        let seq = y.get("containers").unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].get("name"), Some(&Yaml::str("nginx")));
        assert_eq!(seq[0].get("image"), Some(&Yaml::str("nginx:1.23.2")));
        assert_eq!(seq[1].get("name"), Some(&Yaml::str("py")));
    }

    #[test]
    fn seq_at_same_indent_as_key() {
        // Kubernetes manifests often write sequences at the key's own indent.
        let y = parse("ports:\n- containerPort: 80\n- containerPort: 443\n").unwrap();
        let seq = y.get("ports").unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[1].get("containerPort"), Some(&Yaml::Int(443)));
    }

    #[test]
    fn dash_alone_nested_block() {
        let y = parse("-\n  a: 1\n-\n  b: 2\n").unwrap();
        let seq = y.as_seq().unwrap();
        assert_eq!(seq[0].get("a"), Some(&Yaml::Int(1)));
        assert_eq!(seq[1].get("b"), Some(&Yaml::Int(2)));
    }

    #[test]
    fn nested_seq_in_seq() {
        let y = parse("- - a\n  - b\n- c\n").unwrap();
        let seq = y.as_seq().unwrap();
        assert_eq!(seq[0], Yaml::Seq(vec![Yaml::str("a"), Yaml::str("b")]));
        assert_eq!(seq[1], Yaml::str("c"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let y = parse("# header\na: 1 # trailing\n\n  \nb: 2\n").unwrap();
        assert_eq!(y.get("a"), Some(&Yaml::Int(1)));
        assert_eq!(y.get("b"), Some(&Yaml::Int(2)));
    }

    #[test]
    fn hash_inside_quotes_not_comment() {
        let y = parse("a: \"x # y\"\n").unwrap();
        assert_eq!(y.get("a"), Some(&Yaml::str("x # y")));
    }

    #[test]
    fn flow_collections() {
        let y = parse("args: [a, 1, true]\nsel: {app: web, tier: front}\nempty: []\nnone: {}\n")
            .unwrap();
        assert_eq!(
            y.get("args"),
            Some(&Yaml::Seq(vec![
                Yaml::str("a"),
                Yaml::Int(1),
                Yaml::Bool(true)
            ]))
        );
        assert_eq!(y.at("sel.app"), Some(&Yaml::str("web")));
        assert_eq!(y.get("empty"), Some(&Yaml::Seq(vec![])));
        assert_eq!(y.get("none"), Some(&Yaml::Map(vec![])));
    }

    #[test]
    fn nested_flow() {
        let y = parse("m: {list: [1, 2], sub: {k: v}}\n").unwrap();
        assert_eq!(y.at("m.list.1"), Some(&Yaml::Int(2)));
        assert_eq!(y.at("m.sub.k"), Some(&Yaml::str("v")));
    }

    #[test]
    fn urls_with_colons_in_values() {
        let y = parse("url: http://example.org:8080/x\n").unwrap();
        assert_eq!(y.get("url"), Some(&Yaml::str("http://example.org:8080/x")));
    }

    #[test]
    fn duplicate_key_rejected() {
        let e = parse("a: 1\na: 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn collection_keys_rejected() {
        assert!(parse("[a]: 1\n").is_err());
        assert!(parse("{k: v}: 1\n").is_err());
    }

    #[test]
    fn tab_indent_rejected() {
        let e = parse("a:\n\tb: 1\n").unwrap_err();
        assert!(e.message.contains("tab"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse("a: \"oops\n").is_err());
        assert!(parse("a: 'oops\n").is_err());
    }

    #[test]
    fn bad_indent_in_mapping_rejected() {
        let e = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_doc_is_null() {
        assert_eq!(parse("").unwrap(), Yaml::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), Yaml::Null);
    }

    #[test]
    fn multi_doc_stream() {
        let docs = parse_all("---\nkind: Deployment\n---\nkind: Service\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("kind"), Some(&Yaml::str("Deployment")));
        assert_eq!(docs[1].get("kind"), Some(&Yaml::str("Service")));
    }

    #[test]
    fn numeric_keys_become_strings() {
        let y = parse("80: http\n443: https\n").unwrap();
        assert_eq!(y.get("80"), Some(&Yaml::str("http")));
        assert_eq!(y.get("443"), Some(&Yaml::str("https")));
    }

    #[test]
    fn full_deployment_manifest() {
        let src = r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: resnet
spec:
  replicas: 0
  selector:
    matchLabels:
      edge.service: resnet
  template:
    spec:
      containers:
        - name: resnet
          image: gcr.io/tensorflow-serving/resnet
          ports:
            - containerPort: 8501
          volumeMounts:
            - mountPath: /models
              name: model-store
      volumes:
        - name: model-store
          hostPath:
            path: /srv/models
"#;
        let y = parse(src).unwrap();
        assert_eq!(y.at("spec.replicas"), Some(&Yaml::Int(0)));
        assert_eq!(
            y.at("spec.template.spec.containers.0.image")
                .and_then(Yaml::as_str),
            Some("gcr.io/tensorflow-serving/resnet")
        );
        assert_eq!(
            y.at("spec.template.spec.volumes.0.hostPath.path")
                .and_then(Yaml::as_str),
            Some("/srv/models")
        );
        assert_eq!(
            y.at("spec.selector.matchLabels.edge:service"),
            None,
            "path separator is a dot"
        );
    }
}
