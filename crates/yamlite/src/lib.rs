//! # yamlite — a minimal YAML subset for Kubernetes-style manifests
//!
//! The paper's controller consumes *Kubernetes Deployment* definition files and
//! auto-annotates them (unique names, `matchLabels`, the `edge.service` label,
//! `replicas: 0`, a generated `Service` object). The offline crate set has no
//! YAML implementation, so this crate provides the subset those files actually
//! use:
//!
//! * block mappings and block sequences with 2-space-style indentation
//!   (any consistent indentation is accepted),
//! * plain / single-quoted / double-quoted scalars with `null`/bool/int/float
//!   resolution per YAML core-schema conventions,
//! * `# comments` and blank lines,
//! * simple one-line flow collections (`[a, b]`, `{k: v}`),
//! * `---` document separators ([`parse_all`]),
//! * a block-style emitter whose output round-trips through the parser,
//! * dotted-path accessors ([`Yaml::at`] / [`Yaml::set_path`]) used by the
//!   annotation engine.
//!
//! Not supported (and not needed by the manifests in this workspace): anchors,
//! aliases, tags, block scalars (`|`/`>`), multi-line flow collections, and
//! complex (non-string) mapping keys.

mod emitter;
mod parser;
mod value;

pub use emitter::{to_string, to_string_all};
pub use parser::{parse, parse_all, ParseError};
pub use value::Yaml;

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    #[test]
    fn parse_emit_parse_is_identity_on_k8s_style_doc() {
        let src = r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
  labels:
    app: nginx
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          env:
            - name: MODE
              value: "edge"
"#;
        let doc = parse(src).unwrap();
        let emitted = to_string(&doc);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(doc, reparsed, "emitted:\n{emitted}");
    }

    #[test]
    fn multi_document() {
        let src = "a: 1\n---\nb: 2\n";
        let docs = parse_all(src).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].at("a").and_then(Yaml::as_i64), Some(1));
        assert_eq!(docs[1].at("b").and_then(Yaml::as_i64), Some(2));
    }
}
