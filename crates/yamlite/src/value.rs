//! The YAML value tree.

use std::fmt;

/// A parsed YAML value.
///
/// Mappings preserve insertion order (Kubernetes manifests are written for
/// humans; reordering keys on every annotation pass would produce noisy diffs),
/// and keys are plain strings — the only key type the supported subset allows.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Yaml>),
    /// Insertion-ordered mapping.
    Map(Vec<(String, Yaml)>),
}

impl Yaml {
    /// An empty mapping.
    pub fn map() -> Yaml {
        Yaml::Map(Vec::new())
    }

    /// An empty sequence.
    pub fn seq() -> Yaml {
        Yaml::Seq(Vec::new())
    }

    pub fn str(s: impl Into<String>) -> Yaml {
        Yaml::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Yaml::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Yaml::Float(f) => Some(*f),
            Yaml::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_seq_mut(&mut self) -> Option<&mut Vec<Yaml>> {
        match self {
            Yaml::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Yaml> {
        match self {
            Yaml::Map(m) => m.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace `key` in a mapping. Panics if `self` is not a map —
    /// caller bugs should fail loudly during manifest manipulation.
    pub fn insert(&mut self, key: impl Into<String>, value: Yaml) {
        let key = key.into();
        match self {
            Yaml::Map(m) => {
                if let Some(slot) = m.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    m.push((key, value));
                }
            }
            other => panic!("insert into non-map Yaml value: {other:?}"),
        }
    }

    /// Remove `key` from a mapping, returning the removed value.
    pub fn remove(&mut self, key: &str) -> Option<Yaml> {
        match self {
            Yaml::Map(m) => {
                let idx = m.iter().position(|(k, _)| k == key)?;
                Some(m.remove(idx).1)
            }
            _ => None,
        }
    }

    /// Append to a sequence. Panics if `self` is not a sequence.
    pub fn push(&mut self, value: Yaml) {
        match self {
            Yaml::Seq(v) => v.push(value),
            other => panic!("push into non-seq Yaml value: {other:?}"),
        }
    }

    /// Navigate a dotted path through nested mappings; sequence elements are
    /// addressed with numeric segments: `spec.containers.0.image`.
    pub fn at(&self, path: &str) -> Option<&Yaml> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Yaml::Map(_) => cur.get(seg)?,
                Yaml::Seq(v) => v.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Mutable [`Yaml::at`].
    pub fn at_mut(&mut self, path: &str) -> Option<&mut Yaml> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Yaml::Map(_) => cur.get_mut(seg)?,
                Yaml::Seq(v) => v.get_mut(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Set a value at a dotted path, creating intermediate **mappings** as
    /// needed. Numeric segments index existing sequences but never create them.
    /// Returns `false` (without modifying anything else) if an intermediate
    /// exists and is not a collection.
    pub fn set_path(&mut self, path: &str, value: Yaml) -> bool {
        let segs: Vec<&str> = path.split('.').collect();
        let mut cur = self;
        for (i, seg) in segs.iter().enumerate() {
            let last = i == segs.len() - 1;
            match cur {
                Yaml::Map(_) => {
                    if last {
                        cur.insert(*seg, value);
                        return true;
                    }
                    if cur.get(seg).is_none() {
                        cur.insert(*seg, Yaml::map());
                    }
                    cur = cur.get_mut(seg).unwrap();
                }
                Yaml::Seq(v) => {
                    let Ok(idx) = seg.parse::<usize>() else {
                        return false;
                    };
                    let Some(slot) = v.get_mut(idx) else {
                        return false;
                    };
                    if last {
                        *slot = value;
                        return true;
                    }
                    cur = slot;
                }
                _ => return false,
            }
        }
        false
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Yaml::Null => "null",
            Yaml::Bool(_) => "bool",
            Yaml::Int(_) => "int",
            Yaml::Float(_) => "float",
            Yaml::Str(_) => "string",
            Yaml::Seq(_) => "sequence",
            Yaml::Map(_) => "mapping",
        }
    }
}

impl fmt::Display for Yaml {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::emitter::to_string(self))
    }
}

impl From<&str> for Yaml {
    fn from(s: &str) -> Yaml {
        Yaml::Str(s.to_string())
    }
}
impl From<String> for Yaml {
    fn from(s: String) -> Yaml {
        Yaml::Str(s)
    }
}
impl From<i64> for Yaml {
    fn from(i: i64) -> Yaml {
        Yaml::Int(i)
    }
}
impl From<bool> for Yaml {
    fn from(b: bool) -> Yaml {
        Yaml::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Yaml {
        let mut root = Yaml::map();
        root.insert("kind", Yaml::str("Deployment"));
        let mut meta = Yaml::map();
        meta.insert("name", Yaml::str("web"));
        root.insert("metadata", meta);
        let mut spec = Yaml::map();
        spec.insert("replicas", Yaml::Int(3));
        let mut cont = Yaml::seq();
        let mut c0 = Yaml::map();
        c0.insert("image", Yaml::str("nginx:1.23.2"));
        cont.push(c0);
        spec.insert("containers", cont);
        root.insert("spec", spec);
        root
    }

    #[test]
    fn get_and_at() {
        let y = sample();
        assert_eq!(y.get("kind").and_then(Yaml::as_str), Some("Deployment"));
        assert_eq!(y.at("metadata.name").and_then(Yaml::as_str), Some("web"));
        assert_eq!(
            y.at("spec.containers.0.image").and_then(Yaml::as_str),
            Some("nginx:1.23.2")
        );
        assert!(y.at("spec.containers.1").is_none());
        assert!(y.at("nope.deep").is_none());
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut y = sample();
        y.insert("kind", Yaml::str("Service"));
        assert_eq!(y.get("kind").and_then(Yaml::as_str), Some("Service"));
        // order preserved: kind still first
        assert_eq!(y.as_map().unwrap()[0].0, "kind");
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut y = sample();
        assert!(y.set_path("metadata.labels.app", Yaml::str("web")));
        assert_eq!(
            y.at("metadata.labels.app").and_then(Yaml::as_str),
            Some("web")
        );
    }

    #[test]
    fn set_path_through_sequence_index() {
        let mut y = sample();
        assert!(y.set_path("spec.containers.0.image", Yaml::str("nginx:2")));
        assert_eq!(
            y.at("spec.containers.0.image").and_then(Yaml::as_str),
            Some("nginx:2")
        );
        // out-of-range index fails without side effects
        assert!(!y.set_path("spec.containers.7.image", Yaml::Null));
    }

    #[test]
    fn set_path_refuses_scalar_intermediate() {
        let mut y = sample();
        assert!(!y.set_path("kind.sub.key", Yaml::Null));
    }

    #[test]
    fn remove_returns_value() {
        let mut y = sample();
        let v = y.remove("kind");
        assert_eq!(v, Some(Yaml::str("Deployment")));
        assert!(y.get("kind").is_none());
        assert_eq!(y.remove("kind"), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Yaml::Int(5).as_f64(), Some(5.0));
        assert_eq!(Yaml::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Yaml::Str("5".into()).as_i64(), None);
    }

    #[test]
    #[should_panic(expected = "insert into non-map")]
    fn insert_into_scalar_panics() {
        let mut y = Yaml::Int(1);
        y.insert("k", Yaml::Null);
    }
}
