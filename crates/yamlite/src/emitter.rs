//! Block-style emitter. Output is deliberately canonical (2-space indents,
//! sequences indented under their key) so that emit→parse round-trips and
//! manifest diffs stay stable across annotation passes.

use crate::value::Yaml;

/// Serialize a multi-document stream, `---`-separated (the shape
/// `parse_all` reads back).
pub fn to_string_all(docs: &[Yaml]) -> String {
    let mut out = String::new();
    for (i, doc) in docs.iter().enumerate() {
        if i > 0 {
            out.push_str("---\n");
        }
        out.push_str(&to_string(doc));
    }
    out
}

/// Serialize a value as a block-style YAML document (with trailing newline).
pub fn to_string(value: &Yaml) -> String {
    let mut out = String::new();
    match value {
        Yaml::Map(m) if !m.is_empty() => emit_map(m, 0, &mut out),
        Yaml::Seq(s) if !s.is_empty() => emit_seq(s, 0, &mut out),
        Yaml::Map(_) => out.push_str("{}\n"),
        Yaml::Seq(_) => out.push_str("[]\n"),
        scalar => {
            out.push_str(&scalar_repr(scalar));
            out.push('\n');
        }
    }
    out
}

fn indent_str(n: usize) -> String {
    " ".repeat(n)
}

fn emit_map(map: &[(String, Yaml)], indent: usize, out: &mut String) {
    for (k, v) in map {
        out.push_str(&indent_str(indent));
        out.push_str(&key_repr(k));
        out.push(':');
        emit_value_after_key(v, indent, out);
    }
}

fn emit_value_after_key(v: &Yaml, indent: usize, out: &mut String) {
    match v {
        Yaml::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_map(m, indent + 2, out);
        }
        Yaml::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_seq(s, indent + 2, out);
        }
        Yaml::Map(_) => out.push_str(" {}\n"),
        Yaml::Seq(_) => out.push_str(" []\n"),
        scalar => {
            out.push(' ');
            out.push_str(&scalar_repr(scalar));
            out.push('\n');
        }
    }
}

fn emit_seq(seq: &[Yaml], indent: usize, out: &mut String) {
    for item in seq {
        out.push_str(&indent_str(indent));
        out.push('-');
        match item {
            Yaml::Map(m) if !m.is_empty() => {
                // First key on the dash line, the rest below it.
                let (k0, v0) = &m[0];
                out.push(' ');
                out.push_str(&key_repr(k0));
                out.push(':');
                emit_value_after_key(v0, indent + 2, out);
                emit_map(&m[1..], indent + 2, out);
            }
            Yaml::Seq(s) if !s.is_empty() => {
                out.push('\n');
                emit_seq(s, indent + 2, out);
            }
            Yaml::Map(_) => out.push_str(" {}\n"),
            Yaml::Seq(_) => out.push_str(" []\n"),
            scalar => {
                out.push(' ');
                out.push_str(&scalar_repr(scalar));
                out.push('\n');
            }
        }
    }
}

fn key_repr(k: &str) -> String {
    if needs_quoting(k) {
        quote(k)
    } else {
        k.to_string()
    }
}

fn scalar_repr(v: &Yaml) -> String {
    match v {
        Yaml::Null => "null".to_string(),
        Yaml::Bool(b) => b.to_string(),
        Yaml::Int(i) => i.to_string(),
        Yaml::Float(f) => {
            // Keep a decimal point so the token re-parses as a float.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Yaml::Str(s) => {
            if needs_quoting(s) {
                quote(s)
            } else {
                s.clone()
            }
        }
        Yaml::Seq(_) | Yaml::Map(_) => unreachable!("collections handled by block emitters"),
    }
}

/// Would this string be mis-read as something else (or be syntactically
/// invalid) if emitted plain?
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Would re-parse as a non-string scalar.
    if matches!(
        s,
        "~" | "null" | "Null" | "NULL" | "true" | "True" | "TRUE" | "false" | "False" | "FALSE"
    ) {
        return true;
    }
    if s.parse::<i64>().is_ok() {
        return true;
    }
    if s.parse::<f64>().is_ok() && s.chars().all(|c| c.is_ascii_digit() || ".eE+-".contains(c)) {
        return true;
    }
    // Leading/trailing whitespace, or characters that confuse block parsing.
    if s.starts_with(' ')
        || s.ends_with(' ')
        || s.starts_with('-') && (s.len() == 1 || s.as_bytes()[1] == b' ')
        || "!&*#?|>%@`\"'{}[]".contains(s.chars().next().unwrap())
    {
        return true;
    }
    // `: ` or trailing `:` inside would be read as a mapping separator; `#`
    // after a space starts a comment.
    s.contains(": ") || s.ends_with(':') || s.contains(" #") || s.contains('\n') || s.contains('\t')
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&Yaml::Int(5)), "5\n");
        assert_eq!(to_string(&Yaml::str("hi")), "hi\n");
        assert_eq!(to_string(&Yaml::Null), "null\n");
        assert_eq!(to_string(&Yaml::Bool(true)), "true\n");
        assert_eq!(to_string(&Yaml::Float(1.5)), "1.5\n");
        assert_eq!(to_string(&Yaml::Float(2.0)), "2.0\n");
    }

    #[test]
    fn strings_that_look_like_scalars_get_quoted() {
        assert_eq!(to_string(&Yaml::str("42")), "\"42\"\n");
        assert_eq!(to_string(&Yaml::str("true")), "\"true\"\n");
        assert_eq!(to_string(&Yaml::str("")), "\"\"\n");
        assert_eq!(to_string(&Yaml::str("null")), "\"null\"\n");
    }

    #[test]
    fn map_emission() {
        let mut y = Yaml::map();
        y.insert("a", Yaml::Int(1));
        y.insert("b", Yaml::str("x"));
        assert_eq!(to_string(&y), "a: 1\nb: x\n");
    }

    #[test]
    fn nested_collections() {
        let mut inner = Yaml::map();
        inner.insert("k", Yaml::str("v"));
        let mut y = Yaml::map();
        y.insert("outer", inner);
        y.insert("list", Yaml::Seq(vec![Yaml::Int(1), Yaml::Int(2)]));
        assert_eq!(to_string(&y), "outer:\n  k: v\nlist:\n  - 1\n  - 2\n");
    }

    #[test]
    fn empty_collections_flow_form() {
        let mut y = Yaml::map();
        y.insert("e1", Yaml::seq());
        y.insert("e2", Yaml::map());
        let s = to_string(&y);
        assert_eq!(s, "e1: []\ne2: {}\n");
        assert_eq!(parse(&s).unwrap(), y);
    }

    #[test]
    fn seq_of_maps_compact_dash() {
        let mut c = Yaml::map();
        c.insert("name", Yaml::str("nginx"));
        c.insert("image", Yaml::str("nginx:1.23.2"));
        let y = Yaml::Seq(vec![c]);
        assert_eq!(to_string(&y), "- name: nginx\n  image: nginx:1.23.2\n");
    }

    #[test]
    fn roundtrip_special_strings() {
        for s in [
            "with: colon",
            "# not comment",
            "ends:",
            " leading",
            "trailing ",
            "multi\nline",
            "tab\tchar",
            "quote\"inside",
            "-",
            "- dashy",
            "1.23.2",
        ] {
            let y = Yaml::str(s);
            let emitted = to_string(&y);
            let parsed = parse(&emitted).unwrap();
            assert_eq!(parsed, y, "emitted {emitted:?}");
        }
    }

    #[test]
    fn multi_doc_roundtrip() {
        let a = parse("kind: Deployment\n").unwrap();
        let b = parse("kind: Service\n").unwrap();
        let text = to_string_all(&[a.clone(), b.clone()]);
        let docs = crate::parser::parse_all(&text).unwrap();
        assert_eq!(docs, vec![a, b]);
    }

    #[test]
    fn roundtrip_deep_structure() {
        let src = "a:\n  b:\n    - c: 1\n      d:\n        - x\n        - y\n    - c: 2\n";
        let y = parse(src).unwrap();
        assert_eq!(parse(&to_string(&y)).unwrap(), y);
    }
}
