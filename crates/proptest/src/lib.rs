//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace vendors
//! the slice of the proptest API its tests use: the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, [`Just`], integer-range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `prop::option::of`, and character-class string
//! strategies (`"[a-z]{1,8}"`).
//!
//! Differences to real proptest, deliberate for an offline shim:
//! * generation is **deterministic**: the RNG is seeded from the test's module
//!   path and name, so every run explores the same cases (good for CI
//!   reproducibility, no `proptest-regressions` files needed);
//! * there is **no shrinking** — on failure the shim prints the case number
//!   and the generated inputs, which the deterministic seeding makes
//!   reproducible by just re-running the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Cases the runner will actually execute. Under Miri every case is
        /// interpreted (~2 orders of magnitude slower), so the sweep is
        /// clamped: the UB check needs each code path exercised, not the
        /// full statistical sample — natively, `cases` is honoured as-is.
        pub fn effective_cases(&self) -> u32 {
            if cfg!(miri) {
                self.cases.min(8)
            } else {
                self.cases
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A rejected test case. Real proptest's `prop_assert!` returns this via
    /// `?`; the shim's `prop_assert!` panics instead, but helper functions in
    /// tests still name the type in their signatures, so it must exist and a
    /// `Result<(), TestCaseError>` must be usable as a test-body result.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test's full path) so distinct
        /// tests explore distinct sequences but every run is identical.
        pub fn from_label(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Build a recursive strategy: `depth` levels where each level either
    /// emits a base value or applies `recurse` to the level below. The
    /// `desired_size`/`expected_branch_size` hints are accepted for API
    /// compatibility; depth alone bounds the shim's output.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let rec = recurse(level).boxed();
            level = Union {
                variants: vec![(2, base.clone()), (1, rec)],
            }
            .boxed();
        }
        level
    }
}

/// Object-safe inner trait backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Weighted choice between boxed alternatives; backs [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.variants.last().unwrap().1.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer ranges, bool, tuples, char-class strings
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $ty;
                }
                (lo + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// `&str` strategies are interpreted as a concatenation of character classes
/// (`[a-z]`, escapes, optional `{n}` / `{m,n}` repetition) plus literal
/// characters — the subset of regex syntax this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_char_class_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min as u64 + rng.below((atom.max - atom.min + 1) as u64);
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_char_class_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = it.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match c {
                        ']' => break,
                        '\\' => {
                            let esc = it.next().expect("dangling escape in pattern");
                            let lit = match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            };
                            set.push(lit);
                            prev = Some(lit);
                        }
                        '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                            let hi = it.next().unwrap();
                            let lo = prev.take().unwrap();
                            // `lo` itself is already in the set; add the rest.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(u).unwrap());
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                set
            }
            '\\' => {
                let esc = it.next().expect("dangling escape in pattern");
                vec![match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }]
            }
            lit => vec![lit],
        };
        // Optional repetition: {n} or {m,n}.
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for c in it.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

// ---------------------------------------------------------------------------
// any::<T>() via Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized + fmt::Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Strategy for FullRange<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
        impl Arbitrary for $ty {
            type Strategy = FullRange<$ty>;
            fn arbitrary() -> Self::Strategy {
                FullRange { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange {
            _marker: std::marker::PhantomData,
        }
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Collection / option combinators
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{fmt, Strategy, TestRng};

    /// Length bounds for collection strategies; half-open like `Range`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{fmt, Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Option` strategy: `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_label(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.effective_cases() {
                    let mut __args_dbg: Vec<String> = Vec::new();
                    $(
                        let __generated = $crate::Strategy::generate(&($strat), &mut __rng);
                        __args_dbg.push(format!(
                            concat!("  ", stringify!($arg), " = {:?}"),
                            &__generated,
                        ));
                        let $arg = __generated;
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    let __report = |lines: &[String]| {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:",
                            stringify!($name),
                            __case + 1,
                            __config.effective_cases(),
                        );
                        for __line in lines {
                            eprintln!("{__line}");
                        }
                    };
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(__reject)) => {
                            __report(&__args_dbg);
                            panic!("test case rejected: {__reject}");
                        }
                        Err(__panic) => {
                            __report(&__args_dbg);
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    /// Namespace mirror so `prop::collection::vec` / `prop::option::of` work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_label("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-1000i32..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&s));
        }
    }

    #[test]
    fn char_class_patterns_generate_members() {
        let mut rng = TestRng::from_label("patterns");
        for _ in 0..500 {
            let k = "[a-zA-Z][a-zA-Z0-9._/-]{0,15}".generate(&mut rng);
            assert!(!k.is_empty() && k.len() <= 16);
            assert!(k.chars().next().unwrap().is_ascii_alphabetic());
            let g = "[ a-z0-9:#\\-\\n\"'\\[\\]{},.]{0,200}".generate(&mut rng);
            assert!(g.len() <= 200);
        }
    }

    #[test]
    fn oneof_weights_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_label("trees");
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_loops(
            xs in prop::collection::vec(0u8..10, 0..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(flag, flag);
        }
    }
}
