//! Container images: references, layers, manifests.

use std::fmt;

/// Content digest of a layer (stands in for a sha256).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerDigest(pub u64);

impl fmt::Display for LayerDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha256:{:016x}", self.0)
    }
}

/// One image layer: compressed wire size (what gets pulled) and uncompressed
/// size (what gets extracted to disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layer {
    pub digest: LayerDigest,
    pub compressed_bytes: u64,
    pub uncompressed_bytes: u64,
}

impl Layer {
    /// A layer with a typical ~2.5x compression ratio.
    pub fn new(digest: u64, compressed_bytes: u64) -> Layer {
        Layer {
            digest: LayerDigest(digest),
            compressed_bytes,
            uncompressed_bytes: compressed_bytes.saturating_mul(5) / 2,
        }
    }
}

/// An image reference, e.g. `nginx:1.23.2` or
/// `gcr.io/tensorflow-serving/resnet`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageRef(pub String);

impl ImageRef {
    pub fn new(s: impl Into<String>) -> ImageRef {
        ImageRef(s.into())
    }

    /// The registry host implied by the reference (everything before the
    /// first `/` if it looks like a host, else the default registry).
    pub fn registry_host(&self) -> &str {
        match self.0.split_once('/') {
            Some((first, _))
                if first.contains('.') || first.contains(':') || first == "localhost" =>
            {
                first
            }
            _ => "registry-1.docker.io",
        }
    }
}

impl fmt::Display for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An image manifest: the ordered layer list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageManifest {
    pub reference: ImageRef,
    pub layers: Vec<Layer>,
}

impl ImageManifest {
    pub fn new(reference: impl Into<String>, layers: Vec<Layer>) -> ImageManifest {
        ImageManifest {
            reference: ImageRef::new(reference),
            layers,
        }
    }

    /// Total compressed size (the "Size" column of Table I).
    pub fn compressed_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.compressed_bytes).sum()
    }

    pub fn uncompressed_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.uncompressed_bytes).sum()
    }

    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// Deterministically split `total_bytes` into `n` layers whose sizes follow a
/// typical image shape: one large base layer and progressively smaller
/// app/config layers. Digests are derived from `seed` so distinct images get
/// distinct layers while equal inputs are bit-identical across runs.
pub fn synthesize_layers(seed: u64, total_bytes: u64, n: usize) -> Vec<Layer> {
    assert!(n > 0, "image must have at least one layer");
    // Geometric weights 2^(n-1) .. 1: base layer holds about half the bytes.
    let weight_sum: u64 = (0..n).map(|i| 1u64 << i).sum();
    let mut layers = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for i in 0..n {
        let w = 1u64 << (n - 1 - i);
        let bytes = if i == n - 1 {
            total_bytes - assigned // remainder so sizes sum exactly
        } else {
            total_bytes * w / weight_sum
        };
        assigned += bytes;
        // digest derived from (seed, index) via splitmix-like mixing
        let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        layers.push(Layer::new(z ^ (z >> 31), bytes));
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_sizes_sum() {
        let m = ImageManifest::new("nginx:1.23.2", vec![Layer::new(1, 100), Layer::new(2, 50)]);
        assert_eq!(m.compressed_bytes(), 150);
        assert_eq!(m.layer_count(), 2);
        assert_eq!(m.uncompressed_bytes(), 250 + 125);
    }

    #[test]
    fn registry_host_inference() {
        assert_eq!(
            ImageRef::new("nginx:1.23.2").registry_host(),
            "registry-1.docker.io"
        );
        assert_eq!(
            ImageRef::new("gcr.io/tensorflow-serving/resnet").registry_host(),
            "gcr.io"
        );
        assert_eq!(
            ImageRef::new("registry.local:5000/web-asm").registry_host(),
            "registry.local:5000"
        );
        assert_eq!(
            ImageRef::new("josefhammer/web-asm:amd64").registry_host(),
            "registry-1.docker.io"
        );
    }

    #[test]
    fn synthesized_layers_sum_exactly() {
        for n in 1..=9 {
            let layers = synthesize_layers(7, 141_557_760, n);
            assert_eq!(layers.len(), n);
            let total: u64 = layers.iter().map(|l| l.compressed_bytes).sum();
            assert_eq!(total, 141_557_760, "n={n}");
        }
    }

    #[test]
    fn synthesized_layers_base_is_largest() {
        let layers = synthesize_layers(7, 1_000_000, 6);
        assert!(layers[0].compressed_bytes >= layers[5].compressed_bytes * 8);
    }

    #[test]
    fn synthesized_digests_unique_and_deterministic() {
        let a = synthesize_layers(1, 1000, 5);
        let b = synthesize_layers(1, 1000, 5);
        let c = synthesize_layers(2, 1000, 5);
        assert_eq!(a, b);
        let mut digests: Vec<u64> = a.iter().chain(&c).map(|l| l.digest.0).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(
            digests.len(),
            10,
            "digests must be distinct across seeds and indices"
        );
    }

    #[test]
    fn layer_display() {
        let l = Layer::new(0xabcd, 10);
        assert!(l.digest.to_string().starts_with("sha256:"));
    }
}
