//! # containers — the simulated container substrate
//!
//! Models the pieces of containerd/runc that the paper's deployment phases
//! (Pull → Create → Scale-Up, Fig. 4) exercise:
//!
//! * [`image`] — references, layers and manifests. Images are *layered*;
//!   pull cost depends on total size **and** layer count, and layers shared
//!   between images are fetched/stored once (paper §IV-C and Fig. 13),
//! * [`store`] — a content-addressed layer store plus per-node image catalog
//!   with reference-counted layers, so deleting an image keeps layers that
//!   other images still use,
//! * [`runtime`] — a containerd-like runtime: container lifecycle
//!   (create → start → running → ready → stopped → removed) with a cost model
//!   in which **namespace setup dominates start time** (Mohan et al. \[23\]:
//!   ~90 % of container startup), plus app-init time until the service port
//!   opens — the quantity the controller's readiness polling observes.

pub mod image;
pub mod runtime;
pub mod store;

pub use image::{ImageManifest, ImageRef, Layer, LayerDigest};
pub use runtime::{
    Container, ContainerId, ContainerSpec, ContainerState, CostModel, Runtime, RuntimeError,
};
pub use store::{ImageStore, StoreStats};
