//! Per-node image storage: a content-addressed layer store with reference
//! counting, plus the catalog of complete images present on the node.
//!
//! Behaviours from the paper this reproduces:
//!
//! * "Ideally, the required service image is cached already" — presence checks
//!   gate the Pull phase;
//! * "Even if a container image is deleted, some of its layers may be used by
//!   other images. Therefore, the next time the system pulls the same image
//!   again, it may no longer have to pull all layers" — layers are
//!   ref-counted and [`ImageStore::missing_layers`] reports only what must
//!   actually be downloaded.

use simcore::DetHashMap;

use crate::image::{ImageManifest, ImageRef, Layer, LayerDigest};

/// Occupancy counters for a node's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    pub images: usize,
    pub layers: usize,
    pub disk_bytes: u64,
}

/// The image/layer store of a single node.
#[derive(Debug, Default, Clone)]
pub struct ImageStore {
    /// Layers on disk with the number of stored images referencing each.
    layers: DetHashMap<LayerDigest, (Layer, usize)>,
    /// Complete images present (manifest pinned). Probed by every
    /// controller-side readiness check, so a fast deterministic hasher
    /// (DESIGN.md §5i) rather than std's SipHash.
    images: DetHashMap<ImageRef, ImageManifest>,
}

impl ImageStore {
    pub fn new() -> ImageStore {
        ImageStore::default()
    }

    /// Is the complete image present (all layers extracted, manifest known)?
    pub fn has_image(&self, image: &ImageRef) -> bool {
        self.images.contains_key(image)
    }

    pub fn has_layer(&self, digest: LayerDigest) -> bool {
        self.layers.contains_key(&digest)
    }

    /// Layers of `manifest` that are *not* on disk — the actual pull set.
    pub fn missing_layers(&self, manifest: &ImageManifest) -> Vec<Layer> {
        manifest
            .layers
            .iter()
            .filter(|l| !self.layers.contains_key(&l.digest))
            .copied()
            .collect()
    }

    /// Record a completed pull: all layers present, image catalogued.
    /// Idempotent — re-adding an existing image does not double-count refs.
    pub fn add_image(&mut self, manifest: ImageManifest) {
        if self.images.contains_key(&manifest.reference) {
            return;
        }
        for layer in &manifest.layers {
            let slot = self.layers.entry(layer.digest).or_insert((*layer, 0));
            slot.1 += 1;
        }
        self.images.insert(manifest.reference.clone(), manifest);
    }

    /// Delete an image; layers still referenced by other images stay on disk.
    /// Returns `true` if the image was present.
    pub fn remove_image(&mut self, image: &ImageRef) -> bool {
        let Some(manifest) = self.images.remove(image) else {
            return false;
        };
        for layer in &manifest.layers {
            if let Some(slot) = self.layers.get_mut(&layer.digest) {
                slot.1 -= 1;
                if slot.1 == 0 {
                    self.layers.remove(&layer.digest);
                }
            }
        }
        true
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            images: self.images.len(),
            layers: self.layers.len(),
            disk_bytes: self
                .layers
                .values()
                .map(|(l, _)| l.uncompressed_bytes)
                .sum(),
        }
    }

    pub fn images(&self) -> impl Iterator<Item = &ImageRef> {
        self.images.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::synthesize_layers;

    fn nginx() -> ImageManifest {
        ImageManifest::new("nginx:1.23.2", synthesize_layers(1, 141_000_000, 6))
    }

    /// Shares nginx's base layers (paper: "popular base layers … might also be
    /// included in other cached images").
    fn nginx_py() -> ImageManifest {
        let mut layers = nginx().layers;
        layers.extend(synthesize_layers(2, 46_000_000, 1));
        ImageManifest::new("josefhammer/env-writer-py", layers)
    }

    #[test]
    fn empty_store_misses_everything() {
        let s = ImageStore::new();
        let m = nginx();
        assert!(!s.has_image(&m.reference));
        assert_eq!(s.missing_layers(&m).len(), 6);
        assert_eq!(s.stats(), StoreStats::default());
    }

    #[test]
    fn add_then_all_layers_present() {
        let mut s = ImageStore::new();
        let m = nginx();
        s.add_image(m.clone());
        assert!(s.has_image(&m.reference));
        assert!(s.missing_layers(&m).is_empty());
        assert_eq!(s.stats().images, 1);
        assert_eq!(s.stats().layers, 6);
    }

    #[test]
    fn shared_layers_reduce_pull_set() {
        let mut s = ImageStore::new();
        s.add_image(nginx());
        let missing = s.missing_layers(&nginx_py());
        assert_eq!(missing.len(), 1, "only the python layer is missing");
    }

    #[test]
    fn remove_keeps_shared_layers() {
        let mut s = ImageStore::new();
        s.add_image(nginx());
        s.add_image(nginx_py());
        assert!(s.remove_image(&nginx().reference));
        // nginx gone as an image, but its 6 layers live on via nginx_py
        assert!(!s.has_image(&nginx().reference));
        assert_eq!(s.stats().layers, 7);
        assert!(
            s.missing_layers(&nginx()).is_empty(),
            "re-pull needs zero layers"
        );
        // dropping nginx_py now clears the store
        assert!(s.remove_image(&nginx_py().reference));
        assert_eq!(s.stats().layers, 0);
        assert_eq!(s.stats().disk_bytes, 0);
    }

    #[test]
    fn add_is_idempotent() {
        let mut s = ImageStore::new();
        s.add_image(nginx());
        s.add_image(nginx());
        assert_eq!(s.stats().images, 1);
        assert!(s.remove_image(&nginx().reference));
        assert_eq!(s.stats().layers, 0, "no leaked refcounts");
    }

    #[test]
    fn remove_absent_is_false() {
        let mut s = ImageStore::new();
        assert!(!s.remove_image(&ImageRef::new("ghost:latest")));
    }

    #[test]
    fn disk_bytes_counts_uncompressed() {
        let mut s = ImageStore::new();
        let m = nginx();
        let want = m.uncompressed_bytes();
        s.add_image(m);
        assert_eq!(s.stats().disk_bytes, want);
    }
}
