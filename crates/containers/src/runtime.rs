//! A containerd-like runtime for one node.
//!
//! Operations are instantaneous *calls* that return the **completion time** of
//! the work they start; the caller (the cluster control planes in the
//! `cluster` crate) schedules its follow-up events at those instants. State
//! queries take `now` and answer consistently with the in-flight work, so the
//! component stays a deterministic pure state machine.
//!
//! The cost model follows the startup breakdown measured by Mohan et al.
//! (HotCloud'19, the paper's \[23\]): creation and initialization of network
//! namespaces account for ~90 % of container start time. App-init time (from
//! process start until the service's port opens) comes from the service spec —
//! it is the part the paper's controller polls for (Figs. 14/15).

use simcore::DetHashMap;

use simcore::{DurationDist, SimDuration, SimRng, SimTime};

use crate::image::ImageRef;
use crate::store::ImageStore;

/// Identifies a container within one runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

/// Lifecycle states (paper Fig. 4 bottom row, plus the transient phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// `create` issued; becomes `Created` at its completion time.
    Creating,
    Created,
    /// `start` issued; becomes `Running` when namespaces + process are up.
    Starting,
    /// Process running. The service is *ready* only once app-init completes.
    Running,
    Stopped,
    Removed,
}

/// What to run and what it needs.
#[derive(Debug, Clone)]
pub struct ContainerSpec {
    pub name: String,
    pub image: ImageRef,
    /// Time from process start until the service port accepts connections
    /// (e.g. ~0 for asmttpd, seconds of model loading for ResNet). Sampled
    /// per-instance by the caller.
    pub app_init: SimDuration,
    /// Reserved CPU in milli-cores.
    pub cpu_millis: u32,
    /// Reserved memory in bytes.
    pub mem_bytes: u64,
}

/// Per-operation cost distributions, in milliseconds, for one node class.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// containerd: snapshot the image, write config (container create).
    pub create: DurationDist,
    /// runc: create + initialize namespaces/cgroups — dominates start.
    pub namespace_setup: DurationDist,
    /// Fork/exec of the entrypoint after namespaces exist.
    pub process_spawn: DurationDist,
    pub stop: DurationDist,
    pub remove: DurationDist,
    /// Multiplier applied to all of the above (node slowness).
    pub speed_factor: f64,
}

impl CostModel {
    /// The Edge Gateway Server: Threadripper-class x86 (paper §VI).
    /// Calibrated so Docker's create ≈ 100 ms overhead (Fig. 12) and the
    /// container part of scale-up lands in the 300-400 ms range that makes
    /// the total Docker scale-up ≈ 0.5 s (Fig. 11).
    pub fn egs() -> CostModel {
        CostModel {
            create: DurationDist::log_normal_ms(85.0, 0.18),
            namespace_setup: DurationDist::log_normal_ms(290.0, 0.15),
            process_spawn: DurationDist::log_normal_ms(25.0, 0.2),
            stop: DurationDist::log_normal_ms(40.0, 0.2),
            remove: DurationDist::log_normal_ms(60.0, 0.2),
            speed_factor: 1.0,
        }
    }

    /// A Raspberry Pi 4B edge node: same shape, ~3.5x slower.
    pub fn raspberry_pi() -> CostModel {
        CostModel {
            speed_factor: 3.5,
            ..CostModel::egs()
        }
    }

    fn sample(&self, dist: &DurationDist, rng: &mut SimRng) -> SimDuration {
        dist.sample(rng).mul_f64(self.speed_factor)
    }
}

/// A container and its lifecycle timeline.
#[derive(Debug, Clone)]
pub struct Container {
    pub id: ContainerId,
    pub spec: ContainerSpec,
    state: ContainerState,
    /// When the in-flight transition (if any) completes.
    transition_done: SimTime,
    /// When the service port opens (valid once `Running`).
    ready_at: SimTime,
}

impl Container {
    /// The externally visible state at `now` (in-flight transitions resolve
    /// once their completion instant passes).
    pub fn state_at(&self, now: SimTime) -> ContainerState {
        match self.state {
            ContainerState::Creating if now >= self.transition_done => ContainerState::Created,
            ContainerState::Starting if now >= self.transition_done => ContainerState::Running,
            s => s,
        }
    }

    /// Is the service inside accepting connections at `now`?
    pub fn is_ready(&self, now: SimTime) -> bool {
        matches!(self.state_at(now), ContainerState::Running) && now >= self.ready_at
    }

    /// The instant the port opens (only meaningful after `start`).
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Earliest instant strictly after `now` at which this container's
    /// observable state (`state_at` / `is_ready`) can still change without a
    /// runtime mutation; `None` once fully settled. Used to bound the
    /// validity of controller-side status snapshots (DESIGN.md §5i).
    pub fn next_transition_after(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        if matches!(
            self.state,
            ContainerState::Creating | ContainerState::Starting
        ) {
            consider(self.transition_done);
        }
        consider(self.ready_at);
        next
    }
}

/// Why a runtime operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    ImageNotPresent(ImageRef),
    UnknownContainer(ContainerId),
    /// The container is not in a state that allows the operation (includes
    /// calling an op before the previous transition completed).
    InvalidState {
        have: ContainerState,
        want: &'static str,
    },
    InsufficientResources {
        what: &'static str,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ImageNotPresent(i) => write!(f, "image {i} not present on node"),
            RuntimeError::UnknownContainer(id) => write!(f, "unknown container {id:?}"),
            RuntimeError::InvalidState { have, want } => {
                write!(f, "container is {have:?}, operation needs {want}")
            }
            RuntimeError::InsufficientResources { what } => {
                write!(f, "insufficient {what} on node")
            }
        }
    }
}
impl std::error::Error for RuntimeError {}

/// The per-node runtime: image store + containers + resource accounting.
#[derive(Debug)]
pub struct Runtime {
    pub store: ImageStore,
    cost: CostModel,
    rng: SimRng,
    // Probed by every controller-side readiness check (`is_port_open`); the
    // deterministic hasher keeps the per-packet-in probe cheap.
    containers: DetHashMap<ContainerId, Container>,
    next_id: u64,
    cpu_capacity_millis: u32,
    mem_capacity_bytes: u64,
    cpu_used_millis: u32,
    mem_used_bytes: u64,
}

impl Runtime {
    pub fn new(cost: CostModel, rng: SimRng, cpu_millis: u32, mem_bytes: u64) -> Runtime {
        Runtime {
            store: ImageStore::new(),
            cost,
            rng,
            containers: DetHashMap::default(),
            next_id: 0,
            cpu_capacity_millis: cpu_millis,
            mem_capacity_bytes: mem_bytes,
            cpu_used_millis: 0,
            mem_used_bytes: 0,
        }
    }

    /// The EGS runtime: 12 cores, 32 GiB (paper §VI).
    pub fn egs(rng: SimRng) -> Runtime {
        Runtime::new(CostModel::egs(), rng, 12_000, 32 * (1 << 30))
    }

    /// A Raspberry Pi 4B runtime: 4 cores, 4 GiB.
    pub fn raspberry_pi(rng: SimRng) -> Runtime {
        Runtime::new(CostModel::raspberry_pi(), rng, 4_000, 4 * (1 << 30))
    }

    pub fn cpu_free_millis(&self) -> u32 {
        self.cpu_capacity_millis - self.cpu_used_millis
    }
    pub fn mem_free_bytes(&self) -> u64 {
        self.mem_capacity_bytes - self.mem_used_bytes
    }

    /// Fraction of CPU capacity currently reserved (0.0–1.0).
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu_used_millis as f64 / self.cpu_capacity_millis as f64
    }

    /// Create a container (containerd create). Returns its id and the instant
    /// the create completes. Created-but-not-started containers consume no
    /// CPU/memory; resources are reserved by [`Runtime::start`].
    pub fn create(
        &mut self,
        now: SimTime,
        spec: ContainerSpec,
    ) -> Result<(ContainerId, SimTime), RuntimeError> {
        if !self.store.has_image(&spec.image) {
            return Err(RuntimeError::ImageNotPresent(spec.image.clone()));
        }
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        let done = now + self.cost.sample(&self.cost.create.clone(), &mut self.rng);
        self.containers.insert(
            id,
            Container {
                id,
                spec,
                state: ContainerState::Creating,
                transition_done: done,
                ready_at: SimTime::FAR_FUTURE,
            },
        );
        Ok((id, done))
    }

    /// Start a created container. Returns `(running_at, ready_at)`:
    /// `running_at` is when namespaces + process are up (the container shows
    /// as Running), `ready_at` is when the service port opens.
    pub fn start(
        &mut self,
        now: SimTime,
        id: ContainerId,
    ) -> Result<(SimTime, SimTime), RuntimeError> {
        let cost = self.cost.clone();
        let ns = cost.sample(&cost.namespace_setup, &mut self.rng);
        let spawn = cost.sample(&cost.process_spawn, &mut self.rng);
        let (cpu_free, mem_free) = (self.cpu_free_millis(), self.mem_free_bytes());
        let c = self.get_mut(id)?;
        match c.state_at(now) {
            ContainerState::Created | ContainerState::Stopped => {}
            have => {
                return Err(RuntimeError::InvalidState {
                    have,
                    want: "Created or Stopped",
                })
            }
        }
        if c.spec.cpu_millis > cpu_free {
            return Err(RuntimeError::InsufficientResources { what: "cpu" });
        }
        if c.spec.mem_bytes > mem_free {
            return Err(RuntimeError::InsufficientResources { what: "memory" });
        }
        let (cpu, mem) = (c.spec.cpu_millis, c.spec.mem_bytes);
        self.cpu_used_millis += cpu;
        self.mem_used_bytes += mem;
        let c = self.get_mut(id)?;
        let running_at = now + ns + spawn;
        let ready_at = running_at + c.spec.app_init;
        c.state = ContainerState::Starting;
        c.transition_done = running_at;
        c.ready_at = ready_at;
        Ok((running_at, ready_at))
    }

    /// A container's process dies unexpectedly (OOM, segfault, …): the
    /// container transitions to `Stopped` immediately and its resources are
    /// released. What happens next is the orchestrator's business — Docker
    /// (no restart policy) leaves it down; a kubelet restarts it.
    pub fn crash(&mut self, now: SimTime, id: ContainerId) -> Result<(), RuntimeError> {
        let c = self.get_mut(id)?;
        match c.state_at(now) {
            ContainerState::Running => {}
            have => {
                return Err(RuntimeError::InvalidState {
                    have,
                    want: "Running",
                })
            }
        }
        c.state = ContainerState::Stopped;
        c.transition_done = now;
        c.ready_at = SimTime::FAR_FUTURE;
        let (cpu, mem) = (c.spec.cpu_millis, c.spec.mem_bytes);
        self.cpu_used_millis -= cpu;
        self.mem_used_bytes -= mem;
        Ok(())
    }

    /// Stop a running container. Returns the stop-completion instant.
    pub fn stop(&mut self, now: SimTime, id: ContainerId) -> Result<SimTime, RuntimeError> {
        let cost = self.cost.clone();
        let dur = cost.sample(&cost.stop, &mut self.rng);
        let c = self.get_mut(id)?;
        match c.state_at(now) {
            ContainerState::Running => {}
            have => {
                return Err(RuntimeError::InvalidState {
                    have,
                    want: "Running",
                })
            }
        }
        c.state = ContainerState::Stopped;
        c.transition_done = now + dur;
        c.ready_at = SimTime::FAR_FUTURE;
        let (cpu, mem) = (c.spec.cpu_millis, c.spec.mem_bytes);
        self.cpu_used_millis -= cpu;
        self.mem_used_bytes -= mem;
        Ok(now + dur)
    }

    /// Remove a container (must be Created or Stopped); frees its resources.
    pub fn remove(&mut self, now: SimTime, id: ContainerId) -> Result<SimTime, RuntimeError> {
        let cost = self.cost.clone();
        let dur = cost.sample(&cost.remove, &mut self.rng);
        let c = self.get_mut(id)?;
        match c.state_at(now) {
            ContainerState::Created | ContainerState::Stopped => {}
            have => {
                return Err(RuntimeError::InvalidState {
                    have,
                    want: "Created or Stopped",
                })
            }
        }
        c.state = ContainerState::Removed;
        c.transition_done = now + dur;
        Ok(now + dur)
    }

    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    fn get_mut(&mut self, id: ContainerId) -> Result<&mut Container, RuntimeError> {
        self.containers
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownContainer(id))
    }

    /// Is the service port of `id` open at `now`? (What the controller's
    /// readiness probe tests.)
    pub fn is_port_open(&self, now: SimTime, id: ContainerId) -> bool {
        self.get(id).is_some_and(|c| c.is_ready(now))
    }

    /// See [`Container::next_transition_after`].
    pub fn port_transition_after(&self, now: SimTime, id: ContainerId) -> Option<SimTime> {
        self.get(id).and_then(|c| c.next_transition_after(now))
    }

    /// All containers whose state at `now` matches `state`.
    pub fn containers_in_state(
        &self,
        now: SimTime,
        state: ContainerState,
    ) -> impl Iterator<Item = &Container> {
        self.containers
            .values()
            .filter(move |c| c.state_at(now) == state)
    }

    pub fn container_count(&self) -> usize {
        self.containers
            .values()
            .filter(|c| c.state != ContainerState::Removed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{synthesize_layers, ImageManifest};

    fn rt() -> Runtime {
        let mut rt = Runtime::egs(SimRng::seed_from_u64(1));
        rt.store.add_image(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 141_000_000, 6),
        ));
        rt
    }

    fn spec(init_ms: u64) -> ContainerSpec {
        ContainerSpec {
            name: "nginx".into(),
            image: ImageRef::new("nginx:1.23.2"),
            app_init: SimDuration::from_millis(init_ms),
            cpu_millis: 500,
            mem_bytes: 256 << 20,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn create_requires_image() {
        let mut rt = Runtime::egs(SimRng::seed_from_u64(1));
        let err = rt.create(t(0), spec(0)).unwrap_err();
        assert!(matches!(err, RuntimeError::ImageNotPresent(_)));
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut rt = rt();
        let (id, created_at) = rt.create(t(0), spec(100)).unwrap();
        assert_eq!(rt.get(id).unwrap().state_at(t(0)), ContainerState::Creating);
        assert_eq!(
            rt.get(id).unwrap().state_at(created_at),
            ContainerState::Created
        );

        let (running_at, ready_at) = rt.start(created_at, id).unwrap();
        assert!(running_at > created_at);
        assert_eq!(ready_at, running_at + SimDuration::from_millis(100));
        assert_eq!(
            rt.get(id).unwrap().state_at(running_at),
            ContainerState::Running
        );
        assert!(
            !rt.is_port_open(running_at, id),
            "port closed during app init"
        );
        assert!(rt.is_port_open(ready_at, id));

        let stopped_at = rt.stop(ready_at, id).unwrap();
        assert!(!rt.is_port_open(stopped_at, id));
        let removed_at = rt.remove(stopped_at, id).unwrap();
        assert!(removed_at > stopped_at);
        assert_eq!(rt.container_count(), 0);
    }

    #[test]
    fn namespace_setup_dominates_start() {
        // Start duration must be ~90% namespace setup (Mohan et al.).
        let mut rt = rt();
        let (id, created) = rt.create(t(0), spec(0)).unwrap();
        let (running, _) = rt.start(created, id).unwrap();
        let start_ms = (running - created).as_millis_f64();
        assert!(
            (200.0..500.0).contains(&start_ms),
            "start took {start_ms} ms, want namespace-dominated 200-500"
        );
    }

    #[test]
    fn start_before_create_completes_is_invalid() {
        let mut rt = rt();
        let (id, created_at) = rt.create(t(0), spec(0)).unwrap();
        let early = t(0); // create still in flight
        assert!(early < created_at);
        let err = rt.start(early, id).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidState { .. }));
    }

    #[test]
    fn double_start_is_invalid() {
        let mut rt = rt();
        let (id, created_at) = rt.create(t(0), spec(0)).unwrap();
        let (running_at, _) = rt.start(created_at, id).unwrap();
        let err = rt.start(running_at, id).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::InvalidState {
                have: ContainerState::Running,
                ..
            }
        ));
    }

    #[test]
    fn restart_after_stop_allowed() {
        let mut rt = rt();
        let (id, created_at) = rt.create(t(0), spec(50)).unwrap();
        let (_, ready) = rt.start(created_at, id).unwrap();
        let stopped = rt.stop(ready, id).unwrap();
        let (running2, ready2) = rt.start(stopped, id).unwrap();
        assert!(ready2 > running2);
        assert!(rt.is_port_open(ready2, id));
    }

    #[test]
    fn resources_reserved_at_start_freed_at_stop() {
        let mut rt = rt();
        let free0 = rt.cpu_free_millis();
        let (id, created) = rt.create(t(0), spec(0)).unwrap();
        assert_eq!(rt.cpu_free_millis(), free0, "created containers are free");
        let (_, ready) = rt.start(created, id).unwrap();
        assert_eq!(rt.cpu_free_millis(), free0 - 500);
        assert!(rt.cpu_utilization() > 0.0);
        let stopped = rt.stop(ready, id).unwrap();
        assert_eq!(rt.cpu_free_millis(), free0);
        rt.remove(stopped, id).unwrap();
        assert_eq!(rt.cpu_free_millis(), free0, "no double free on remove");
    }

    #[test]
    fn insufficient_memory_rejected_at_start() {
        let mut rt = rt();
        let mut s = spec(0);
        s.mem_bytes = 100 << 40; // absurd
        let (id, created) = rt.create(t(0), s).unwrap();
        let err = rt.start(created, id).unwrap_err();
        assert_eq!(err, RuntimeError::InsufficientResources { what: "memory" });
        // nothing leaked; the container stays Created
        assert_eq!(
            rt.get(id).unwrap().state_at(created),
            ContainerState::Created
        );
        assert_eq!(rt.mem_free_bytes(), 32 * (1 << 30));
    }

    #[test]
    fn pi_is_slower_than_egs() {
        let run = |mut rt: Runtime| {
            rt.store.add_image(ImageManifest::new(
                "nginx:1.23.2",
                synthesize_layers(1, 141_000_000, 6),
            ));
            let (id, created) = rt.create(t(0), spec(0)).unwrap();
            let (running, _) = rt.start(created, id).unwrap();
            running.as_millis_f64()
        };
        let egs = run(Runtime::egs(SimRng::seed_from_u64(7)));
        let pi = run(Runtime::raspberry_pi(SimRng::seed_from_u64(7)));
        assert!(pi > egs * 2.5, "pi={pi} egs={egs}");
    }

    #[test]
    fn unknown_container_errors() {
        let mut rt = rt();
        assert!(matches!(
            rt.start(t(0), ContainerId(99)),
            Err(RuntimeError::UnknownContainer(_))
        ));
        assert!(!rt.is_port_open(t(0), ContainerId(99)));
    }

    #[test]
    fn crash_stops_and_frees_resources() {
        let mut rt = rt();
        let free0 = rt.cpu_free_millis();
        let (id, created) = rt.create(t(0), spec(50)).unwrap();
        let (_, ready) = rt.start(created, id).unwrap();
        assert!(rt.is_port_open(ready, id));
        rt.crash(ready + SimDuration::from_secs(1), id).unwrap();
        assert!(!rt.is_port_open(ready + SimDuration::from_secs(1), id));
        assert_eq!(rt.cpu_free_millis(), free0, "crash releases resources");
        // crashing a stopped container is invalid
        assert!(rt.crash(ready + SimDuration::from_secs(2), id).is_err());
        // a crashed container can be restarted
        let (_, ready2) = rt.start(ready + SimDuration::from_secs(2), id).unwrap();
        assert!(rt.is_port_open(ready2, id));
    }

    #[test]
    fn containers_in_state_filters() {
        let mut rt = rt();
        let (a, created_a) = rt.create(t(0), spec(0)).unwrap();
        let (_b, _) = rt.create(t(0), spec(0)).unwrap();
        rt.start(created_a, a).unwrap();
        let later = t(10_000);
        assert_eq!(
            rt.containers_in_state(later, ContainerState::Running)
                .count(),
            1
        );
        assert_eq!(
            rt.containers_in_state(later, ContainerState::Created)
                .count(),
            1
        );
    }
}
