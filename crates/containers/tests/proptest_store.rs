//! Property tests of the content-addressed layer store: under arbitrary
//! add/remove sequences, ref-counting never leaks or double-frees, and
//! `missing_layers` is always exactly the complement of what is on disk.

use std::collections::{HashMap, HashSet};

use containers::image::synthesize_layers;
use containers::{ImageManifest, ImageStore};
use proptest::prelude::*;

/// A small universe of images with deliberately overlapping layers.
fn universe() -> Vec<ImageManifest> {
    let base = synthesize_layers(1, 50_000_000, 4);
    let mut shared_a = base.clone();
    shared_a.extend(synthesize_layers(2, 10_000_000, 2));
    let mut shared_b = base.clone();
    shared_b.extend(synthesize_layers(3, 5_000_000, 1));
    vec![
        ImageManifest::new("base:1", base),
        ImageManifest::new("app-a:1", shared_a),
        ImageManifest::new("app-b:1", shared_b),
        ImageManifest::new("standalone:1", synthesize_layers(4, 7_000_000, 3)),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Add(usize),
    Remove(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4).prop_map(Op::Add),
            (0usize..4).prop_map(Op::Remove),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn refcounts_match_reference(ops in ops()) {
        let images = universe();
        let mut store = ImageStore::new();
        let mut present: HashSet<usize> = HashSet::new();

        for op in ops {
            match op {
                Op::Add(i) => {
                    store.add_image(images[i].clone());
                    present.insert(i);
                }
                Op::Remove(i) => {
                    let removed = store.remove_image(&images[i].reference);
                    prop_assert_eq!(removed, present.remove(&i));
                }
            }

            // Reference layer set: union of layers of present images.
            let mut expected: HashMap<u64, u64> = HashMap::new();
            for &i in &present {
                for l in &images[i].layers {
                    expected.insert(l.digest.0, l.uncompressed_bytes);
                }
            }
            let stats = store.stats();
            prop_assert_eq!(stats.images, present.len());
            prop_assert_eq!(stats.layers, expected.len());
            prop_assert_eq!(stats.disk_bytes, expected.values().sum::<u64>());

            // missing_layers is exactly the complement for every image.
            for img in &images {
                let missing = store.missing_layers(img);
                for l in &img.layers {
                    let on_disk = expected.contains_key(&l.digest.0);
                    let reported_missing = missing.iter().any(|m| m.digest == l.digest);
                    prop_assert_eq!(
                        on_disk, !reported_missing,
                        "layer {} of {}", l.digest, img.reference
                    );
                }
            }

            // has_image agrees with the model.
            for (i, img) in images.iter().enumerate() {
                prop_assert_eq!(store.has_image(&img.reference), present.contains(&i));
            }
        }
    }

    #[test]
    fn interleaved_add_remove_never_leaks(seq in ops()) {
        let images = universe();
        let mut store = ImageStore::new();
        for op in seq {
            match op {
                Op::Add(i) => store.add_image(images[i].clone()),
                Op::Remove(i) => { store.remove_image(&images[i].reference); }
            }
        }
        // removing everything leaves an empty store
        for img in &images {
            store.remove_image(&img.reference);
        }
        let stats = store.stats();
        prop_assert_eq!(stats.images, 0);
        prop_assert_eq!(stats.layers, 0, "leaked layers");
        prop_assert_eq!(stats.disk_bytes, 0);
    }
}
