//! Property tests over the workload engine: every arrival model, fed the
//! same `(config, seed)`, must produce the same trace byte for byte —
//! requests, service addresses, and the mobility schedule alike. The
//! determinism contract every pinned hash downstream (testbed metrics, mesh
//! traces, bench artifacts) rests on.

use proptest::prelude::*;
use simcore::SimRng;
use workload::{TraceConfig, WorkloadConfig, WorkloadRegistry};

/// Decode a randomized-but-valid workload config: any builtin model, a mix
/// that always satisfies the per-service floor, optional mobility.
fn decode(model_idx: usize, services: usize, extra: usize, handovers: u32) -> WorkloadConfig {
    let names = WorkloadRegistry::builtin().names();
    let min_per_service = 2;
    WorkloadConfig {
        model: names[model_idx % names.len()].to_string(),
        mix: TraceConfig {
            services,
            total_requests: services * min_per_service + extra,
            min_per_service,
            ..TraceConfig::default()
        },
        handovers_per_client: f64::from(handovers) / 2.0,
        ..WorkloadConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_config_same_seed_is_byte_identical(
        seed in any::<u64>(),
        model_idx in 0usize..5,
        services in 1usize..40,
        extra in 0usize..400,
        handovers in 0u32..5,
    ) {
        let cfg = decode(model_idx, services, extra, handovers);
        let a = cfg.generate(&mut SimRng::seed_from_u64(seed)).unwrap();
        let b = cfg.generate(&mut SimRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(&a.requests, &b.requests, "arrivals diverged");
        prop_assert_eq!(&a.service_addrs, &b.service_addrs);
        prop_assert_eq!(&a.handovers, &b.handovers, "mobility diverged");
    }

    #[test]
    fn every_model_upholds_trace_invariants(
        seed in any::<u64>(),
        model_idx in 0usize..5,
        services in 1usize..40,
        extra in 0usize..400,
        handovers in 0u32..5,
    ) {
        let cfg = decode(model_idx, services, extra, handovers);
        let trace = cfg.generate(&mut SimRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(trace.requests.len(), cfg.mix.total_requests);
        prop_assert_eq!(trace.service_addrs.len(), services);
        let horizon = trace.config.duration;
        prop_assert!(trace.requests.iter().all(|r| r.at.as_nanos()
            <= horizon.as_nanos() as u64
            && r.service < services
            && r.client < trace.config.clients));
        prop_assert!(
            trace.requests.windows(2).all(|w| w[0].at <= w[1].at),
            "requests not time-sorted"
        );
        prop_assert!(
            trace
                .handovers
                .windows(2)
                .all(|w| (w[0].at, w[0].client) <= (w[1].at, w[1].client)),
            "handovers not time-sorted"
        );
        prop_assert!(trace
            .handovers
            .iter()
            .all(|h| h.client < trace.config.clients));
        if cfg.handovers_per_client == 0.0 {
            prop_assert!(trace.handovers.is_empty());
        }
    }

    /// Mobility must never perturb arrivals: the handover schedule runs on a
    /// non-advancing derived RNG stream, so turning it on or off leaves the
    /// request sequence untouched for every model.
    #[test]
    fn mobility_is_arrival_invariant_for_every_model(
        seed in any::<u64>(),
        model_idx in 0usize..5,
    ) {
        let without = decode(model_idx, 10, 200, 0);
        let with = decode(model_idx, 10, 200, 4);
        let a = without.generate(&mut SimRng::seed_from_u64(seed)).unwrap();
        let b = with.generate(&mut SimRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(&a.requests, &b.requests);
        prop_assert!(a.handovers.is_empty());
        prop_assert!(!b.handovers.is_empty());
    }
}
