//! The four edge services of paper Table I.
//!
//! | Service  | Image(s)                                 | Size / Layers | Containers | HTTP |
//! |----------|------------------------------------------|---------------|------------|------|
//! | Asm      | josefhammer/web-asm:amd64                | 6.18 KiB / 1  | 1          | GET  |
//! | Nginx    | nginx:1.23.2                             | 135 MiB / 6   | 1          | GET  |
//! | ResNet   | gcr.io/tensorflow-serving/resnet         | 308 MiB / 9   | 1          | POST |
//! | Nginx+Py | nginx:1.23.2 + josefhammer/env-writer-py | 181 MiB / 7   | 2          | GET  |
//!
//! App-init values (time from process start until the port opens) are
//! calibrated to the paper's waiting-time observations (Figs. 14–15): asmttpd
//! is "negligible", Nginx is fast, ResNet loads a model for seconds ("the
//! waiting time alone accounts for more than a fourth of the total time"),
//! and the Python side-app reads config and warms up before writing its
//! first index.html.

use cluster::{ContainerTemplate, DeploymentRequirements, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, ImageRef};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::DurationDist;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// The four services of Table I, plus the serverless WebAssembly variant of
/// the paper's §VIII future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    Asm,
    Nginx,
    ResNet,
    NginxPy,
    /// A web service compiled to a WebAssembly module (future work §VIII):
    /// functionally the Nginx workload, deployed on a serverless runtime.
    WasmWeb,
}

impl ServiceKind {
    /// The paper's evaluated services (Table I).
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::Asm,
        ServiceKind::Nginx,
        ServiceKind::ResNet,
        ServiceKind::NginxPy,
    ];
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServiceKind::Asm => "Asm",
            ServiceKind::Nginx => "Nginx",
            ServiceKind::ResNet => "ResNet",
            ServiceKind::NginxPy => "Nginx+Py",
            ServiceKind::WasmWeb => "Wasm-Web",
        })
    }
}

/// Everything the testbed needs to deploy and exercise one service type.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    pub kind: ServiceKind,
    /// Deployable template (images, app-init, resources).
    pub template: ServiceTemplate,
    /// Image manifests to publish in registries.
    pub manifests: Vec<ImageManifest>,
    pub http_method: &'static str,
    /// Request payload on the wire (83 KiB cat picture for ResNet).
    pub request_bytes: u64,
    /// Response payload (short plain text; classification result for ResNet).
    pub response_bytes: u64,
    /// Server-side processing time per request once running (Fig. 16's
    /// "about a millisecond" for the web servers, much more for inference).
    pub server_time: DurationDist,
}

impl ServiceProfile {
    pub fn of(kind: ServiceKind) -> ServiceProfile {
        match kind {
            ServiceKind::Asm => asm(),
            ServiceKind::Nginx => nginx(),
            ServiceKind::ResNet => resnet(),
            ServiceKind::NginxPy => nginx_py(),
            ServiceKind::WasmWeb => wasm_web(),
        }
    }

    /// All four, in Table I order.
    pub fn catalog() -> Vec<ServiceProfile> {
        ServiceKind::ALL
            .iter()
            .map(|&k| ServiceProfile::of(k))
            .collect()
    }

    /// Sum of compressed image sizes (the Table I Size column).
    pub fn image_bytes(&self) -> u64 {
        self.manifests.iter().map(|m| m.compressed_bytes()).sum()
    }

    pub fn layer_count(&self) -> usize {
        self.manifests.iter().map(|m| m.layer_count()).sum()
    }

    pub fn container_count(&self) -> usize {
        self.template.container_count()
    }
}

/// The shared nginx image (used by both the Nginx and Nginx+Py services, so
/// the layer store deduplicates it — paper §IV-C).
fn nginx_manifest() -> ImageManifest {
    ImageManifest::new("nginx:1.23.2", synthesize_layers(0x6e67_696e, 135 * MIB, 6))
}

fn asm() -> ServiceProfile {
    let image = "josefhammer/web-asm:amd64";
    ServiceProfile {
        kind: ServiceKind::Asm,
        template: ServiceTemplate {
            name: "web-asm".into(),
            port: 80,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
            containers: vec![ContainerTemplate {
                name: "asmttpd".into(),
                image: ImageRef::new(image),
                // "negligible launch time … measures the minimal overhead of
                // starting a service in a container"
                app_init: DurationDist::log_normal_ms(2.0, 0.3),
                cpu_millis: 100,
                mem_bytes: 8 << 20,
            }],
        },
        manifests: vec![ImageManifest::new(
            image,
            // 6.18 KiB, a single layer
            synthesize_layers(0x61_736d, (6.18 * KIB as f64) as u64, 1),
        )],
        http_method: "GET",
        request_bytes: 180,
        response_bytes: 250, // short plain-text file
        server_time: DurationDist::log_normal_ms(0.08, 0.3),
    }
}

fn nginx() -> ServiceProfile {
    ServiceProfile {
        kind: ServiceKind::Nginx,
        template: ServiceTemplate {
            name: "nginx-web".into(),
            port: 80,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
            containers: vec![ContainerTemplate {
                name: "nginx".into(),
                image: ImageRef::new("nginx:1.23.2"),
                app_init: DurationDist::log_normal_ms(110.0, 0.2),
                cpu_millis: 250,
                mem_bytes: 128 << 20,
            }],
        },
        manifests: vec![nginx_manifest()],
        http_method: "GET",
        request_bytes: 180,
        response_bytes: 250,
        server_time: DurationDist::log_normal_ms(0.15, 0.3),
    }
}

fn resnet() -> ServiceProfile {
    let image = "gcr.io/tensorflow-serving/resnet";
    ServiceProfile {
        kind: ServiceKind::ResNet,
        template: ServiceTemplate {
            name: "resnet-serving".into(),
            port: 8501,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
            containers: vec![ContainerTemplate {
                name: "tf-serving".into(),
                image: ImageRef::new(image),
                // Loading the ResNet50 model takes seconds; dominates the
                // wait time (Fig. 14).
                app_init: DurationDist::log_normal_ms(2300.0, 0.15),
                cpu_millis: 2000,
                mem_bytes: 2 << 30,
            }],
        },
        manifests: vec![ImageManifest::new(
            image,
            synthesize_layers(0x7265_736e, 308 * MIB, 9),
        )],
        http_method: "POST",
        request_bytes: 83 * KIB, // the cat picture
        response_bytes: 2 * KIB, // classification scores
        server_time: DurationDist::log_normal_ms(190.0, 0.2),
    }
}

fn nginx_py() -> ServiceProfile {
    let py_image = "josefhammer/env-writer-py";
    ServiceProfile {
        kind: ServiceKind::NginxPy,
        template: ServiceTemplate {
            name: "nginx-py".into(),
            port: 80,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
            containers: vec![
                ContainerTemplate {
                    name: "nginx".into(),
                    image: ImageRef::new("nginx:1.23.2"),
                    app_init: DurationDist::log_normal_ms(110.0, 0.2),
                    cpu_millis: 250,
                    mem_bytes: 128 << 20,
                },
                ContainerTemplate {
                    name: "env-writer".into(),
                    image: ImageRef::new(py_image),
                    // CPython interpreter start + config read + first write
                    app_init: DurationDist::log_normal_ms(420.0, 0.2),
                    cpu_millis: 150,
                    mem_bytes: 64 << 20,
                },
            ],
        },
        manifests: vec![
            nginx_manifest(),
            // 181 MiB total − 135 MiB nginx = 46 MiB, 7 − 6 = 1 layer
            ImageManifest::new(py_image, synthesize_layers(0x70_7973, 46 * MIB, 1)),
        ],
        http_method: "GET",
        request_bytes: 180,
        response_bytes: 600, // generated index.html
        server_time: DurationDist::log_normal_ms(0.15, 0.3),
    }
}

/// The serverless variant: same web workload as Nginx, shipped as a 3 MiB
/// single-module artifact for a WebAssembly runtime (future work §VIII).
fn wasm_web() -> ServiceProfile {
    let module = "edge/web-fn.wasm";
    ServiceProfile {
        kind: ServiceKind::WasmWeb,
        template: ServiceTemplate {
            name: "wasm-web".into(),
            port: 80,
            scheduler_name: None,
            requirements: DeploymentRequirements::none(),
            containers: vec![ContainerTemplate {
                name: "web-fn".into(),
                image: ImageRef::new(module),
                // instantiation readiness is modelled by the wasm backend;
                // the app itself has no warm-up
                app_init: DurationDist::zero(),
                cpu_millis: 100,
                mem_bytes: 32 << 20,
            }],
        },
        manifests: vec![ImageManifest::new(
            module,
            synthesize_layers(0x7761_736d, 3 * MIB, 1),
        )],
        http_method: "GET",
        request_bytes: 180,
        // wasm call gate adds a little per-request overhead vs a native
        // server (Gackstatter et al.: cold starts win, throughput does not)
        response_bytes: 250,
        server_time: DurationDist::log_normal_ms(0.45, 0.3),
    }
}

/// Build the three registries of the evaluation (Docker Hub, GCR, private
/// LAN) with every Table I image published in its home registry. When
/// `use_private_mirror` is set, the LAN registry also carries everything and
/// is preferred — Fig. 13's "private registry" series.
pub fn standard_registries(use_private_mirror: bool) -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    let mut gcr = Registry::new(RegistryProfile::gcr());
    let mut lan = Registry::new(RegistryProfile::private_lan());
    let mut all = ServiceProfile::catalog();
    all.push(wasm_web());
    for profile in all {
        for manifest in &profile.manifests {
            if manifest.reference.registry_host() == "gcr.io" {
                gcr.publish(manifest.clone());
            } else {
                hub.publish(manifest.clone());
            }
            lan.publish(manifest.clone());
        }
    }
    let mut set = RegistrySet::new();
    set.add(hub);
    set.add(gcr);
    if use_private_mirror {
        set.add_mirror(lan);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_and_layers() {
        let asm = ServiceProfile::of(ServiceKind::Asm);
        assert_eq!(asm.image_bytes(), 6328); // 6.18 KiB
        assert_eq!(asm.layer_count(), 1);
        assert_eq!(asm.container_count(), 1);
        assert_eq!(asm.http_method, "GET");

        let nginx = ServiceProfile::of(ServiceKind::Nginx);
        assert_eq!(nginx.image_bytes(), 135 * MIB);
        assert_eq!(nginx.layer_count(), 6);

        let resnet = ServiceProfile::of(ServiceKind::ResNet);
        assert_eq!(resnet.image_bytes(), 308 * MIB);
        assert_eq!(resnet.layer_count(), 9);
        assert_eq!(resnet.http_method, "POST");
        assert_eq!(resnet.request_bytes, 83 * KIB);

        let combo = ServiceProfile::of(ServiceKind::NginxPy);
        assert_eq!(combo.image_bytes(), 181 * MIB);
        assert_eq!(combo.layer_count(), 7);
        assert_eq!(combo.container_count(), 2);
    }

    #[test]
    fn nginx_image_is_shared_between_services() {
        let nginx = ServiceProfile::of(ServiceKind::Nginx);
        let combo = ServiceProfile::of(ServiceKind::NginxPy);
        assert_eq!(nginx.manifests[0], combo.manifests[0]);
    }

    #[test]
    fn app_init_ordering_matches_paper() {
        // asm ≪ nginx ≪ py ≪ resnet
        let mean = |k: ServiceKind, idx: usize| {
            ServiceProfile::of(k).template.containers[idx]
                .app_init
                .0
                .mean()
                .unwrap()
        };
        assert!(mean(ServiceKind::Asm, 0) < mean(ServiceKind::Nginx, 0));
        assert!(mean(ServiceKind::Nginx, 0) < mean(ServiceKind::NginxPy, 1));
        assert!(mean(ServiceKind::NginxPy, 1) < mean(ServiceKind::ResNet, 0));
        assert!(
            mean(ServiceKind::ResNet, 0) > 2000.0,
            "model load is seconds"
        );
    }

    #[test]
    fn registries_route_images_home() {
        let regs = standard_registries(false);
        let nginx_ref = ImageRef::new("nginx:1.23.2");
        let resnet_ref = ImageRef::new("gcr.io/tensorflow-serving/resnet");
        assert_eq!(regs.route(&nginx_ref).unwrap().profile.name, "docker-hub");
        assert_eq!(regs.route(&resnet_ref).unwrap().profile.name, "gcr");
    }

    #[test]
    fn mirror_takes_over_when_enabled() {
        let regs = standard_registries(true);
        for profile in ServiceProfile::catalog() {
            for m in &profile.manifests {
                assert_eq!(
                    regs.route(&m.reference).unwrap().profile.name,
                    "private-lan",
                    "{} should come from the mirror",
                    m.reference
                );
            }
        }
    }

    #[test]
    fn server_time_ordering() {
        let asm = ServiceProfile::of(ServiceKind::Asm)
            .server_time
            .0
            .mean()
            .unwrap();
        let resnet = ServiceProfile::of(ServiceKind::ResNet)
            .server_time
            .0
            .mean()
            .unwrap();
        assert!(resnet > asm * 100.0, "inference ≫ static file serving");
    }

    #[test]
    fn catalog_has_four_distinct_services() {
        let cat = ServiceProfile::catalog();
        assert_eq!(cat.len(), 4);
        let mut names: Vec<&str> = cat.iter().map(|p| p.template.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(ServiceKind::NginxPy.to_string(), "Nginx+Py");
        assert_eq!(ServiceKind::Asm.to_string(), "Asm");
    }
}
