//! Pluggable arrival processes — the workload engine's core abstraction.
//!
//! An [`ArrivalModel`] decides *when* each service's requests arrive and
//! *which client* issues each one; the [`crate::mix::ServiceMix`] decides how
//! many requests each service gets. The split means every model stresses the
//! same service population, so runs across models differ only in temporal
//! shape:
//!
//! * [`Bigflows`] — the paper's replay shape: front-loaded first-seen offsets
//!   plus uniform order statistics. Byte-identical to the historical
//!   `Trace::generate`, so it is the default model and keeps every pinned
//!   hash.
//! * [`Poisson`] — homogeneous Poisson (uniform order statistics over the
//!   whole window, no front-loading): the stationary baseline.
//! * [`Mmpp`] — a two-state Markov-modulated Poisson process: each service
//!   alternates ON/OFF phases (random phase offset) and arrives
//!   `burst_ratio`× faster while ON. Bursty but stationary in the mean.
//! * [`Diurnal`] — a sinusoidal rate curve over the window (a compressed
//!   day): arrivals concentrate around the configured peak.
//! * [`FlashCrowd`] — thousands of clients slam one cold service inside a
//!   short window: the on-demand deployment race the paper motivates, and
//!   the lease-contention stressor for the controller mesh.
//!
//! Every model draws from the caller's [`SimRng`] only — identical
//! `(config, seed)` yields byte-identical traces.

use simcore::{SimRng, SimTime};

use crate::bigflows::TraceRequest;
use crate::mix::ServiceMix;
use crate::spec::WorkloadConfig;

/// A named arrival process. Implementations must be deterministic in the
/// provided RNG: no ambient state, no iteration-order dependence.
pub trait ArrivalModel {
    /// The registry name this model was created under.
    fn name(&self) -> &'static str;

    /// Redistribute the mix's per-service request counts before placement.
    /// The default keeps the popularity law untouched; [`FlashCrowd`]
    /// concentrates mass on the spike target. Implementations must preserve
    /// the total and the mix's per-service floor.
    fn reshape_counts(&self, counts: Vec<usize>, _mix: &ServiceMix<'_>) -> Vec<usize> {
        counts
    }

    /// Emit `count` requests for service `svc` into `out`. Called once per
    /// service in index order; the caller sorts the combined trace.
    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    );
}

fn push(out: &mut Vec<TraceRequest>, at_s: f64, svc: usize, client: usize) {
    out.push(TraceRequest {
        at: SimTime::from_secs_f64(at_s),
        service: svc,
        client,
    });
}

/// The paper's bigFlows replay shape (the default model). The draw order —
/// one first-seen offset, then per request an arrival time and a client —
/// must stay byte-identical to the historical `Trace::generate` loop: the
/// pinned seed-42 metrics hash replays through it.
pub struct Bigflows;

impl ArrivalModel for Bigflows {
    fn name(&self) -> &'static str {
        "bigflows"
    }

    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    ) {
        let horizon = mix.horizon();
        // Front-loaded first-seen offset, truncated so every service fits
        // its requests into the remaining window.
        let mean = mix.first_seen_mean();
        let first_seen = (-mean * (1.0 - rng.f64()).ln()).min(horizon * 0.5);
        // Uniform order statistics over [first_seen, horizon) ≈ Poisson
        // process conditioned on the count.
        for _ in 0..count {
            let at = first_seen + (horizon - first_seen) * rng.f64();
            push(out, at, svc, rng.index(mix.clients()));
        }
    }
}

/// Homogeneous Poisson: uniform order statistics over the full window.
pub struct Poisson;

impl ArrivalModel for Poisson {
    fn name(&self) -> &'static str {
        "poisson"
    }

    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    ) {
        let horizon = mix.horizon();
        for _ in 0..count {
            push(out, horizon * rng.f64(), svc, rng.index(mix.clients()));
        }
    }
}

/// Two-state MMPP: the service alternates ON (`burst_on` long, rate
/// `burst_ratio`) and OFF (`burst_off` long, rate 1) phases; each service
/// gets a random phase offset so bursts decorrelate across services.
/// Arrivals are placed by inverting the piecewise-linear cumulative rate.
pub struct Mmpp {
    pub burst_on_s: f64,
    pub burst_off_s: f64,
    pub burst_ratio: f64,
}

impl Mmpp {
    /// Map a point `target` in cumulative-rate space back to a wall-clock
    /// instant, walking the ON/OFF phase schedule from `phase0` (the offset
    /// into the period at t = 0).
    fn invert(&self, target: f64, phase0: f64, horizon: f64) -> f64 {
        let mut t = 0.0;
        let mut cursor = phase0;
        let mut remaining = target;
        while t < horizon {
            let (rate, phase_left) = if cursor < self.burst_on_s {
                (self.burst_ratio, self.burst_on_s - cursor)
            } else {
                (1.0, self.burst_on_s + self.burst_off_s - cursor)
            };
            let span = phase_left.min(horizon - t);
            let weight = rate * span;
            if remaining <= weight {
                return t + remaining / rate;
            }
            remaining -= weight;
            t += span;
            cursor += span;
            if cursor >= self.burst_on_s + self.burst_off_s {
                cursor = 0.0;
            }
        }
        horizon
    }

    /// Total cumulative rate over `[0, horizon)` starting at `phase0`.
    fn total_weight(&self, phase0: f64, horizon: f64) -> f64 {
        let mut t = 0.0;
        let mut cursor = phase0;
        let mut total = 0.0;
        while t < horizon {
            let (rate, phase_left) = if cursor < self.burst_on_s {
                (self.burst_ratio, self.burst_on_s - cursor)
            } else {
                (1.0, self.burst_on_s + self.burst_off_s - cursor)
            };
            let span = phase_left.min(horizon - t);
            total += rate * span;
            t += span;
            cursor += span;
            if cursor >= self.burst_on_s + self.burst_off_s {
                cursor = 0.0;
            }
        }
        total
    }
}

impl ArrivalModel for Mmpp {
    fn name(&self) -> &'static str {
        "mmpp"
    }

    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    ) {
        let horizon = mix.horizon();
        let period = self.burst_on_s + self.burst_off_s;
        let phase0 = rng.f64() * period;
        let total = self.total_weight(phase0, horizon);
        for _ in 0..count {
            let at = self.invert(rng.f64() * total, phase0, horizon);
            push(out, at.min(horizon), svc, rng.index(mix.clients()));
        }
    }
}

/// Sinusoidal diurnal curve: rate(t) = 1 + amplitude·cos(2π(t/horizon −
/// peak)), a compressed day whose rush hour sits at `peak` (a fraction of
/// the window). Inverted through a fixed cumulative grid — deterministic,
/// no transcendental-accumulation drift across platforms beyond the libm
/// guarantees the rest of the sim already relies on.
pub struct Diurnal {
    /// Peak position as a fraction of the window, in `[0, 1)`.
    pub peak: f64,
    /// Rate swing around the mean, in `[0, 1)`. 0 degenerates to Poisson.
    pub amplitude: f64,
}

/// Cumulative-rate grid resolution for [`Diurnal`] inversion. 4096 bins over
/// a 300 s window place arrivals within ~75 ms of the exact inverse — far
/// below the controller's probe granularity.
const DIURNAL_BINS: usize = 4096;

impl ArrivalModel for Diurnal {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    ) {
        let horizon = mix.horizon();
        // Cumulative rate at each bin edge; cum[0] = 0, cum[BINS] = total.
        let mut cum = [0.0f64; DIURNAL_BINS + 1];
        for i in 0..DIURNAL_BINS {
            let mid = (i as f64 + 0.5) / DIURNAL_BINS as f64;
            let rate = 1.0 + self.amplitude * (std::f64::consts::TAU * (mid - self.peak)).cos();
            cum[i + 1] = cum[i] + rate;
        }
        let total = cum[DIURNAL_BINS];
        for _ in 0..count {
            let target = rng.f64() * total;
            // Binary search for the bin containing `target`.
            let mut lo = 0usize;
            let mut hi = DIURNAL_BINS;
            while hi - lo > 1 {
                let midpt = (lo + hi) / 2;
                if cum[midpt] <= target {
                    lo = midpt;
                } else {
                    hi = midpt;
                }
            }
            let span = cum[lo + 1] - cum[lo];
            let frac = if span > 0.0 {
                (target - cum[lo]) / span
            } else {
                0.0
            };
            let at = (lo as f64 + frac) / DIURNAL_BINS as f64 * horizon;
            push(out, at.min(horizon), svc, rng.index(mix.clients()));
        }
    }
}

/// Flash crowd: `spike_fraction` of the whole trace slams the most popular
/// service inside `[spike_at, spike_at + spike_window)` — the target stays
/// cold until the spike, then thousands of clients hit it at once. The
/// remaining services run Poisson background traffic.
pub struct FlashCrowd {
    pub spike_at_s: f64,
    pub spike_window_s: f64,
    pub spike_fraction: f64,
}

/// The flash crowd always targets the popularity-rank-0 service.
pub const FLASH_CROWD_TARGET: usize = 0;

impl ArrivalModel for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash-crowd"
    }

    /// Drain background services down to (at most) the mix floor until the
    /// spike target holds `spike_fraction` of the total. Deterministic — no
    /// RNG: the donors are visited in descending-popularity order so the
    /// spike drains the head of the law first.
    fn reshape_counts(&self, mut counts: Vec<usize>, mix: &ServiceMix<'_>) -> Vec<usize> {
        let total: usize = counts.iter().sum();
        let want = ((total as f64 * self.spike_fraction) as usize).max(counts[FLASH_CROWD_TARGET]);
        let floor = mix.config.min_per_service;
        let mut need = want - counts[FLASH_CROWD_TARGET];
        while need > 0 {
            let mut moved = false;
            for svc in (FLASH_CROWD_TARGET + 1)..counts.len() {
                if need == 0 {
                    break;
                }
                if counts[svc] > floor {
                    counts[svc] -= 1;
                    counts[FLASH_CROWD_TARGET] += 1;
                    need -= 1;
                    moved = true;
                }
            }
            if !moved {
                break; // every donor is at the floor; spike takes what it can
            }
        }
        counts
    }

    fn generate_service(
        &self,
        svc: usize,
        count: usize,
        mix: &ServiceMix<'_>,
        rng: &mut SimRng,
        out: &mut Vec<TraceRequest>,
    ) {
        let horizon = mix.horizon();
        if svc == FLASH_CROWD_TARGET {
            // The spike: every request lands inside the short window.
            let start = self.spike_at_s.min(horizon);
            let window = self
                .spike_window_s
                .min(horizon - start)
                .max(f64::MIN_POSITIVE);
            for _ in 0..count {
                push(
                    out,
                    start + window * rng.f64(),
                    svc,
                    rng.index(mix.clients()),
                );
            }
        } else {
            // Background: plain Poisson over the whole window.
            for _ in 0..count {
                push(out, horizon * rng.f64(), svc, rng.index(mix.clients()));
            }
        }
    }
}

/// Build the model a [`WorkloadConfig`]'s knobs describe, by registry name.
/// Factories for [`crate::spec::WorkloadRegistry`].
pub(crate) fn bigflows_factory(_cfg: &WorkloadConfig) -> Box<dyn ArrivalModel> {
    Box::new(Bigflows)
}

pub(crate) fn poisson_factory(_cfg: &WorkloadConfig) -> Box<dyn ArrivalModel> {
    Box::new(Poisson)
}

pub(crate) fn mmpp_factory(cfg: &WorkloadConfig) -> Box<dyn ArrivalModel> {
    Box::new(Mmpp {
        burst_on_s: cfg.burst_on.as_secs_f64(),
        burst_off_s: cfg.burst_off.as_secs_f64(),
        burst_ratio: cfg.burst_ratio,
    })
}

pub(crate) fn diurnal_factory(cfg: &WorkloadConfig) -> Box<dyn ArrivalModel> {
    Box::new(Diurnal {
        peak: cfg.diurnal_peak,
        amplitude: cfg.diurnal_amplitude,
    })
}

pub(crate) fn flash_crowd_factory(cfg: &WorkloadConfig) -> Box<dyn ArrivalModel> {
    Box::new(FlashCrowd {
        spike_at_s: cfg.spike_at.as_secs_f64(),
        spike_window_s: cfg.spike_window.as_secs_f64(),
        spike_fraction: cfg.spike_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigflows::TraceConfig;

    fn gen(model: &dyn ArrivalModel, cfg: &TraceConfig, seed: u64) -> Vec<TraceRequest> {
        let mix = ServiceMix::new(cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        let counts = model.reshape_counts(mix.counts(&mut rng), &mix);
        assert_eq!(counts.iter().sum::<usize>(), cfg.total_requests);
        let mut out = Vec::new();
        for (svc, &count) in counts.iter().enumerate() {
            model.generate_service(svc, count, &mix, &mut rng, &mut out);
        }
        out
    }

    #[test]
    fn poisson_spreads_over_window() {
        let cfg = TraceConfig::default();
        let reqs = gen(&Poisson, &cfg, 3);
        assert_eq!(reqs.len(), 1708);
        let horizon = cfg.duration.as_secs_f64();
        let late = reqs
            .iter()
            .filter(|r| r.at.as_secs_f64() > horizon * 0.5)
            .count();
        // A front-loaded model puts ~75% in the first half; Poisson ~50%.
        assert!(
            (700..=1000).contains(&late),
            "poisson second-half count {late}"
        );
    }

    #[test]
    fn mmpp_bursts_concentrate_arrivals() {
        let cfg = TraceConfig::default();
        let model = Mmpp {
            burst_on_s: 5.0,
            burst_off_s: 20.0,
            burst_ratio: 9.0,
        };
        // Phases decorrelate across services, so the aggregate smooths out;
        // concentration shows per service. ON phases cover 20% of time but
        // carry 9·5/(9·5+20) ≈ 69% of a service's mass, so its busiest fifth
        // of seconds must hold well over the uniform share.
        let mix = ServiceMix::new(&cfg);
        let mut rng = SimRng::seed_from_u64(4);
        let mut reqs = Vec::new();
        model.generate_service(0, 1000, &mix, &mut rng, &mut reqs);
        assert_eq!(reqs.len(), 1000);
        let mut per_sec = vec![0usize; 301];
        for r in &reqs {
            per_sec[r.at.as_secs_f64() as usize] += 1;
        }
        per_sec.sort_unstable_by(|a, b| b.cmp(a));
        let busy: usize = per_sec[..60].iter().sum();
        assert!(busy > 600, "busiest 20% of seconds hold {busy}/1000");
    }

    #[test]
    fn diurnal_peaks_where_configured() {
        let cfg = TraceConfig::default();
        let model = Diurnal {
            peak: 0.5,
            amplitude: 0.9,
        };
        let reqs = gen(&model, &cfg, 5);
        let horizon = cfg.duration.as_secs_f64();
        let mid = reqs
            .iter()
            .filter(|r| {
                let f = r.at.as_secs_f64() / horizon;
                (0.25..0.75).contains(&f)
            })
            .count();
        // Middle half of the window should hold well over half the mass.
        assert!(mid > 1708 * 6 / 10, "mid-window arrivals {mid}/1708");
    }

    #[test]
    fn flash_crowd_concentrates_on_target() {
        let cfg = TraceConfig::default();
        let model = FlashCrowd {
            spike_at_s: 10.0,
            spike_window_s: 5.0,
            spike_fraction: 0.5,
        };
        let reqs = gen(&model, &cfg, 6);
        assert_eq!(reqs.len(), 1708);
        let spike: Vec<_> = reqs
            .iter()
            .filter(|r| r.service == FLASH_CROWD_TARGET)
            .collect();
        assert!(
            spike.len() >= 1708 / 2,
            "spike holds {}/1708 requests",
            spike.len()
        );
        assert!(spike
            .iter()
            .all(|r| (10.0..15.0001).contains(&r.at.as_secs_f64())));
    }

    #[test]
    fn flash_crowd_respects_floor() {
        let cfg = TraceConfig::default();
        let model = FlashCrowd {
            spike_at_s: 10.0,
            spike_window_s: 5.0,
            spike_fraction: 0.99,
        };
        let mix = ServiceMix::new(&cfg);
        let counts = model.reshape_counts(mix.counts(&mut SimRng::seed_from_u64(1)), &mix);
        assert_eq!(counts.iter().sum::<usize>(), 1708);
        // Donors drained exactly to the floor; the spike absorbs the rest.
        assert!(counts[1..].iter().all(|&n| n == 20), "{counts:?}");
        assert_eq!(counts[0], 1708 - 41 * 20);
    }

    #[test]
    fn models_deterministic_per_seed() {
        let cfg = TraceConfig::default();
        let models: Vec<Box<dyn ArrivalModel>> = vec![
            Box::new(Bigflows),
            Box::new(Poisson),
            Box::new(Mmpp {
                burst_on_s: 5.0,
                burst_off_s: 20.0,
                burst_ratio: 9.0,
            }),
            Box::new(Diurnal {
                peak: 0.5,
                amplitude: 0.8,
            }),
            Box::new(FlashCrowd {
                spike_at_s: 10.0,
                spike_window_s: 5.0,
                spike_fraction: 0.5,
            }),
        ];
        for model in &models {
            let a = gen(model.as_ref(), &cfg, 11);
            let b = gen(model.as_ref(), &cfg, 11);
            assert_eq!(a, b, "{} not deterministic", model.name());
        }
    }

    #[test]
    fn mmpp_inversion_is_monotone() {
        let m = Mmpp {
            burst_on_s: 5.0,
            burst_off_s: 20.0,
            burst_ratio: 9.0,
        };
        let total = m.total_weight(3.0, 300.0);
        let mut prev = -1.0;
        for i in 0..100 {
            let at = m.invert(total * i as f64 / 100.0, 3.0, 300.0);
            assert!(at >= prev, "inversion not monotone at step {i}");
            assert!((0.0..=300.0).contains(&at));
            prev = at;
        }
    }
}
