//! Client mobility: sessions hand over between ingress switches/shards
//! mid-flight (the transparent session-continuity scenario of
//! arXiv:2009.01716). A handover moves every *future* request of the client
//! to its next ingress shard and makes the departing controller tear down
//! the client's installed redirect flows — forcing flow re-installation and
//! a fresh FAST/BEST evaluation at the new ingress. Requests already in
//! flight stay anchored at the old ingress until they resolve
//! (make-before-break), which is what the edgeverify session-continuity
//! analysis checks.
//!
//! The schedule is generated on a **dedicated RNG stream**
//! (`"workload-mobility"`) so enabling mobility never perturbs the arrival
//! draws: the same `(config, seed)` yields the same request trace with and
//! without handovers.

use simcore::{SimDuration, SimRng, SimTime};

/// One handover: at `at`, `client`'s ingress advances to the next shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handover {
    pub at: SimTime,
    pub client: usize,
}

/// The label of the dedicated mobility RNG stream, derived from the trace
/// seed root. Kept public so tests can reproduce the schedule.
pub const MOBILITY_STREAM: &str = "workload-mobility";

/// Generate a sorted handover schedule: each client performs
/// `per_client` expected handovers (the fractional part is a Bernoulli
/// extra), uniformly placed over the window. Deterministic in `rng`.
pub fn generate_handovers(
    clients: usize,
    duration: SimDuration,
    per_client: f64,
    rng: &mut SimRng,
) -> Vec<Handover> {
    assert!(per_client >= 0.0, "handovers_per_client must be >= 0");
    if per_client == 0.0 {
        return Vec::new();
    }
    let horizon = duration.as_secs_f64();
    let base = per_client.floor() as usize;
    let extra_p = per_client.fract();
    let mut out = Vec::new();
    for client in 0..clients {
        let n = base + usize::from(extra_p > 0.0 && rng.f64() < extra_p);
        for _ in 0..n {
            out.push(Handover {
                at: SimTime::from_secs_f64(horizon * rng.f64()),
                client,
            });
        }
    }
    out.sort_unstable_by_key(|h| (h.at, h.client));
    out
}

/// Which ingress shard serves `client` at instant `at`: the home shard
/// (`client % shards`) advanced by one for every handover at or before
/// `at`. A request arriving exactly at a handover instant uses the *new*
/// ingress. With a single shard every client is always at shard 0 — the
/// plain testbed — but handovers still trigger flow teardown there.
pub fn ingress_at(handovers: &[Handover], client: usize, at: SimTime, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let past = handovers
        .iter()
        .filter(|h| h.client == client && h.at <= at)
        .count();
    (client + past) % shards
}

/// Each handover paired with the shard the client is *leaving* — the shard
/// whose controller must tear down the client's flows. Returned in schedule
/// order.
pub fn departures(handovers: &[Handover], shards: usize) -> Vec<(usize, Handover)> {
    let mut seen: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    handovers
        .iter()
        .map(|&h| {
            let prior = seen.entry(h.client).or_insert(0);
            let old = if shards <= 1 {
                0
            } else {
                (h.client + *prior) % shards
            };
            *prior += 1;
            (old, h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn zero_rate_yields_empty_schedule() {
        let mut rng = SimRng::seed_from_u64(1);
        let hs = generate_handovers(100, d(300.0), 0.0, &mut rng);
        assert!(hs.is_empty());
    }

    #[test]
    fn integer_rate_is_exact_per_client() {
        let mut rng = SimRng::seed_from_u64(2);
        let hs = generate_handovers(50, d(300.0), 2.0, &mut rng);
        assert_eq!(hs.len(), 100);
        for c in 0..50 {
            assert_eq!(hs.iter().filter(|h| h.client == c).count(), 2);
        }
        assert!(hs.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        assert!(hs.iter().all(|h| h.at.as_secs_f64() <= 300.0));
    }

    #[test]
    fn fractional_rate_averages_out() {
        let mut rng = SimRng::seed_from_u64(3);
        let hs = generate_handovers(1000, d(300.0), 0.5, &mut rng);
        assert!((380..=620).contains(&hs.len()), "got {}", hs.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_handovers(40, d(100.0), 1.5, &mut SimRng::seed_from_u64(9));
        let b = generate_handovers(40, d(100.0), 1.5, &mut SimRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn ingress_advances_per_handover() {
        let hs = vec![
            Handover {
                at: t(10.0),
                client: 1,
            },
            Handover {
                at: t(20.0),
                client: 1,
            },
            Handover {
                at: t(15.0),
                client: 2,
            },
        ];
        // client 1, 4 shards: home 1, then 2 after t=10, then 3 after t=20.
        assert_eq!(ingress_at(&hs, 1, t(5.0), 4), 1);
        assert_eq!(
            ingress_at(&hs, 1, t(10.0), 4),
            2,
            "boundary uses new ingress"
        );
        assert_eq!(ingress_at(&hs, 1, t(19.9), 4), 2);
        assert_eq!(ingress_at(&hs, 1, t(25.0), 4), 3);
        // wraps modulo shards
        assert_eq!(ingress_at(&hs, 2, t(300.0), 3), 0);
        // single shard is always 0
        assert_eq!(ingress_at(&hs, 1, t(25.0), 1), 0);
        // untouched client stays home
        assert_eq!(ingress_at(&hs, 3, t(300.0), 4), 3);
    }

    #[test]
    fn departures_track_the_old_shard() {
        let hs = vec![
            Handover {
                at: t(10.0),
                client: 1,
            },
            Handover {
                at: t(15.0),
                client: 2,
            },
            Handover {
                at: t(20.0),
                client: 1,
            },
        ];
        let d = departures(&hs, 4);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], (1, hs[0])); // client 1 leaves home shard 1
        assert_eq!(d[1], (2, hs[1])); // client 2 leaves home shard 2
        assert_eq!(d[2], (2, hs[2])); // client 1's second handover leaves shard 2
    }
}
