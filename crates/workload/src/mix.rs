//! Service-mix model: the popularity law and per-service HTTP exchange
//! shapes, decoupled from the bigFlows generator so every arrival model
//! ([`crate::arrival`]) shares one notion of "which services exist and how
//! much traffic each gets".
//!
//! The popularity allocation is byte-for-byte the historical bigFlows one
//! (Zipf weights over a per-service floor, exact total), so the default
//! workload pipeline reproduces the paper's 42-service / 1708-request
//! marginals and the pinned seed-42 trace hash.

use simcore::{dist::Zipf, SimDuration, SimRng};
use simnet::{IpAddr, SocketAddr};

use crate::bigflows::TraceConfig;
use crate::client::HttpExchange;

/// The service population and its traffic split. Plain borrowed view over a
/// [`TraceConfig`] — the mix is a *law*, the config carries the numbers.
#[derive(Debug, Clone, Copy)]
pub struct ServiceMix<'a> {
    pub config: &'a TraceConfig,
}

impl<'a> ServiceMix<'a> {
    pub fn new(config: &'a TraceConfig) -> ServiceMix<'a> {
        ServiceMix { config }
    }

    /// Allocate per-service request counts: Zipf weights with a floor,
    /// exact sum. Identical RNG consumption to the historical bigFlows
    /// `popularity_counts` — the pinned trace hashes depend on it.
    pub fn counts(&self, rng: &mut SimRng) -> Vec<usize> {
        let c = self.config;
        let zipf = Zipf::new(c.services, c.zipf_exponent);
        let spare = c.total_requests - c.services * c.min_per_service;
        // Distribute the non-floor mass by expected Zipf share, then hand
        // out the rounding remainder one by one to random (weighted)
        // services.
        let mut counts: Vec<usize> = (0..c.services)
            .map(|i| c.min_per_service + (zipf.probability(i) * spare as f64).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        while assigned < c.total_requests {
            counts[zipf.sample(rng)] += 1;
            assigned += 1;
        }
        counts
    }

    /// Synthetic public addresses: 93.184.x.y:80 (TEST-NET-ish), one per
    /// service, in popularity-rank order.
    pub fn service_addrs(&self) -> Vec<SocketAddr> {
        (0..self.config.services)
            .map(|i| {
                SocketAddr::new(
                    IpAddr::new(93, 184, (i / 250 + 1) as u8, (i % 250 + 1) as u8),
                    80,
                )
            })
            .collect()
    }

    /// The HTTP exchange shape of service `svc` — what one request/response
    /// pair of that service weighs on the wire. Deterministic in the service
    /// index (no RNG): the popularity rank cycles through five archetypes,
    /// from a bare health-check-sized page to a model-inference upload.
    pub fn exchange(&self, svc: usize) -> HttpExchange {
        // Archetypes: (request bytes, response bytes).
        const SHAPES: [(u64, u64); 5] = [
            (220, 612),      // static landing page
            (260, 4_096),    // templated html
            (310, 16_384),   // JSON API payload
            (280, 131_072),  // media thumbnail
            (4_096, 24_576), // inference: fat request, structured reply
        ];
        let (request_bytes, response_bytes) = SHAPES[svc % SHAPES.len()];
        HttpExchange {
            request_bytes,
            response_bytes,
        }
    }

    /// Total bytes offered by `counts` requests under this mix's exchange
    /// shapes — the bench's offered-load figure.
    pub fn offered_bytes(&self, counts: &[usize]) -> u64 {
        counts
            .iter()
            .enumerate()
            .map(|(svc, &n)| {
                let e = self.exchange(svc);
                (e.request_bytes + e.response_bytes) * n as u64
            })
            .sum()
    }

    /// The trace window in seconds.
    pub fn horizon(&self) -> f64 {
        self.config.duration.as_secs_f64()
    }

    /// Mean of the front-loaded "service first seen" offset, seconds.
    pub fn first_seen_mean(&self) -> f64 {
        self.config.first_seen_mean.as_secs_f64()
    }

    pub fn clients(&self) -> usize {
        self.config.clients
    }

    pub fn duration(&self) -> SimDuration {
        self.config.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig::default()
    }

    #[test]
    fn counts_sum_exactly_and_respect_floor() {
        let c = cfg();
        let mix = ServiceMix::new(&c);
        let counts = mix.counts(&mut SimRng::seed_from_u64(1));
        assert_eq!(counts.len(), 42);
        assert_eq!(counts.iter().sum::<usize>(), 1708);
        assert!(counts.iter().all(|&n| n >= 20));
    }

    #[test]
    fn counts_deterministic_per_seed() {
        let c = cfg();
        let mix = ServiceMix::new(&c);
        let a = mix.counts(&mut SimRng::seed_from_u64(7));
        let b = mix.counts(&mut SimRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn addrs_are_distinct_port_80() {
        let c = cfg();
        let mix = ServiceMix::new(&c);
        let mut addrs = mix.service_addrs();
        assert!(addrs.iter().all(|a| a.port == 80));
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 42);
    }

    #[test]
    fn exchange_shapes_deterministic_and_varied() {
        let c = cfg();
        let mix = ServiceMix::new(&c);
        assert_eq!(mix.exchange(0), mix.exchange(0));
        assert_eq!(mix.exchange(0), mix.exchange(5));
        assert_ne!(mix.exchange(0), mix.exchange(3));
        let counts = vec![1; 5];
        let total: u64 = (0..5)
            .map(|i| {
                let e = mix.exchange(i);
                e.request_bytes + e.response_bytes
            })
            .sum();
        assert_eq!(mix.offered_bytes(&counts), total);
    }
}
