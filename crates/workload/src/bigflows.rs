//! A synthetic stand-in for the paper's `bigFlows.pcap` workload.
//!
//! The paper extracts TCP conversations to public port-80 addresses from a
//! five-minute real traffic capture and keeps destinations receiving ≥ 20
//! requests: **42 services, 1708 requests** (Fig. 9), which — replayed through
//! the controller — produce 42 deployments with up to ~8 deployments/s in the
//! first seconds (Fig. 10).
//!
//! The generator reproduces those marginals: a Zipf-ish popularity law with a
//! 20-request floor, per-service Poisson arrivals over the window, and
//! service "first seen" times drawn from a front-loaded distribution so early
//! seconds see a burst of fresh services, as in real captures where popular
//! flows appear immediately.

use simcore::{SimDuration, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};

use crate::mobility::Handover;
use crate::spec::WorkloadConfig;

/// Trace shape parameters, defaulting to the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    pub services: usize,
    pub total_requests: usize,
    pub duration: SimDuration,
    pub min_per_service: usize,
    /// Zipf exponent of the popularity law.
    pub zipf_exponent: f64,
    /// Number of client hosts issuing the requests (the 20 Raspberry Pis).
    pub clients: usize,
    /// Mean of the exponential "service first seen" offset. Small values
    /// front-load deployments (Fig. 10's early burst).
    pub first_seen_mean: SimDuration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            services: 42,
            total_requests: 1708,
            duration: SimDuration::from_secs(300),
            min_per_service: 20,
            zipf_exponent: 0.9,
            clients: 20,
            first_seen_mean: SimDuration::from_secs(18),
        }
    }
}

impl TraceConfig {
    /// The paper's trace scaled by an integer multiplier: `scale`× the
    /// clients, services and total requests over the same five-minute
    /// window. `scaled(1)` is exactly [`TraceConfig::default`], so all the
    /// paper-calibrated marginals are unchanged at 1×; larger multipliers
    /// keep the per-service floor and popularity law while widening the
    /// service and client populations (the city-scale benchmark dimension).
    pub fn scaled(scale: usize) -> TraceConfig {
        assert!(scale > 0, "scale multiplier must be >= 1");
        let base = TraceConfig::default();
        TraceConfig {
            services: base.services * scale,
            total_requests: base.total_requests * scale,
            clients: base.clients * scale,
            ..base
        }
    }
}

/// One request in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    pub at: SimTime,
    /// Index into [`Trace::service_addrs`].
    pub service: usize,
    /// Which client host issues it.
    pub client: usize,
}

/// A generated trace: time-sorted requests plus the synthetic public
/// addresses standing in for the capture's destination IPs.
///
/// ```
/// use simcore::SimRng;
/// use workload::{Trace, TraceConfig};
///
/// let trace = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(1));
/// assert_eq!(trace.requests.len(), 1708);      // paper Fig. 9
/// assert_eq!(trace.service_addrs.len(), 42);
/// assert!(trace.per_service_counts().iter().all(|&c| c >= 20));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    pub requests: Vec<TraceRequest>,
    pub service_addrs: Vec<SocketAddr>,
    pub config: TraceConfig,
    /// Client-mobility schedule (empty for the paper's static replay). See
    /// [`crate::mobility`].
    pub handovers: Vec<Handover>,
}

impl Trace {
    /// Generate a trace. Deterministic in `(config, rng seed)`.
    ///
    /// Thin wrapper over the workload engine's default pipeline
    /// ([`WorkloadConfig::generate`] with the `bigflows` model and no
    /// mobility) — the RNG consumption is byte-identical to the historical
    /// inline generator, so every pinned hash replays unchanged.
    pub fn generate(config: TraceConfig, rng: &mut SimRng) -> Trace {
        WorkloadConfig {
            mix: config,
            ..WorkloadConfig::default()
        }
        .generate(rng)
        .expect("bigflows is a builtin workload model")
    }

    /// Load a trace from CSV text with a `time_s,service,client` header —
    /// the format `edgesim` accepts for replaying externally extracted
    /// captures (the paper extracts its workload from bigFlows.pcap with
    /// tshark; that extraction's output maps 1:1 onto this).
    ///
    /// `service` may be an index (assigned synthetic addresses) and `client`
    /// an index below `clients`.
    pub fn from_csv(text: &str, clients: usize) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace file")?;
        let cols: Vec<&str> = header.split(',').map(str::trim).collect();
        if cols != ["time_s", "service", "client"] {
            return Err(format!("bad header {cols:?}, want time_s,service,client"));
        }
        let mut requests = Vec::new();
        let mut max_service = 0usize;
        let mut max_time = 0.0f64;
        for (no, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(format!("line {}: expected 3 fields", no + 1));
            }
            let at: f64 = parts[0]
                .parse()
                .map_err(|_| format!("line {}: bad time", no + 1))?;
            let service: usize = parts[1]
                .parse()
                .map_err(|_| format!("line {}: bad service", no + 1))?;
            let client: usize = parts[2]
                .parse()
                .map_err(|_| format!("line {}: bad client", no + 1))?;
            if at < 0.0 {
                return Err(format!("line {}: negative time", no + 1));
            }
            if client >= clients {
                return Err(format!("line {}: client {} out of range", no + 1, client));
            }
            max_service = max_service.max(service);
            max_time = max_time.max(at);
            requests.push(TraceRequest {
                at: SimTime::from_secs_f64(at),
                service,
                client,
            });
        }
        if requests.is_empty() {
            return Err("trace has no requests".into());
        }
        requests.sort_by_key(|r| (r.at, r.service, r.client));
        let services = max_service + 1;
        let service_addrs: Vec<SocketAddr> = (0..services)
            .map(|i| {
                SocketAddr::new(
                    IpAddr::new(93, 184, (i / 250 + 1) as u8, (i % 250 + 1) as u8),
                    80,
                )
            })
            .collect();
        let total = requests.len();
        Ok(Trace {
            requests,
            service_addrs,
            config: TraceConfig {
                services,
                total_requests: total,
                duration: SimDuration::from_secs_f64(max_time.ceil()),
                min_per_service: 0,
                clients,
                ..TraceConfig::default()
            },
            handovers: Vec::new(),
        })
    }

    /// Serialize to the CSV format [`Trace::from_csv`] reads.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,service,client\n");
        for r in &self.requests {
            out.push_str(&format!(
                "{:.6},{},{}\n",
                r.at.as_secs_f64(),
                r.service,
                r.client
            ));
        }
        out
    }

    /// Count of requests per service.
    pub fn per_service_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.services];
        for r in &self.requests {
            counts[r.service] += 1;
        }
        counts
    }

    /// The instant each service is first requested — when replayed through
    /// the controller, its deployment time (Fig. 10).
    pub fn first_request_times(&self) -> Vec<SimTime> {
        let mut first = vec![SimTime::FAR_FUTURE; self.config.services];
        for r in &self.requests {
            if r.at < first[r.service] {
                first[r.service] = r.at;
            }
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64) -> Trace {
        Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(seed))
    }

    #[test]
    fn paper_marginals_hold() {
        let t = trace(1);
        assert_eq!(t.requests.len(), 1708);
        assert_eq!(t.service_addrs.len(), 42);
        let counts = t.per_service_counts();
        assert!(
            counts.iter().all(|&c| c >= 20),
            "floor violated: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 1708);
    }

    #[test]
    fn popularity_is_skewed() {
        let t = trace(2);
        let mut counts = t.per_service_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // top service well above the floor; tail at/near the floor
        assert!(counts[0] > 80, "top={}", counts[0]);
        assert!(counts[41] >= 20 && counts[41] < 40, "tail={}", counts[41]);
    }

    #[test]
    fn requests_sorted_and_within_window() {
        let t = trace(3);
        let horizon = t.config.duration.as_secs_f64();
        let mut prev = SimTime::ZERO;
        for r in &t.requests {
            assert!(r.at >= prev);
            assert!(r.at.as_secs_f64() <= horizon);
            assert!(r.client < 20);
            prev = r.at;
        }
    }

    #[test]
    fn deployments_front_loaded() {
        // Fig. 10: most services appear early; a burst in the first seconds.
        let t = trace(4);
        let first = t.first_request_times();
        let early = first.iter().filter(|t| t.as_secs_f64() < 60.0).count();
        assert!(
            early >= 28,
            "only {early}/42 services appear in the first minute"
        );
        // all 42 deployments happen (every service is requested)
        assert!(first.iter().all(|&f| f != SimTime::FAR_FUTURE));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = trace(9);
        let b = trace(9);
        assert_eq!(a.requests, b.requests);
        let c = trace(10);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn distinct_service_addresses() {
        let t = trace(5);
        let mut addrs = t.service_addrs.clone();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 42);
        assert!(t.service_addrs.iter().all(|a| a.port == 80));
    }

    #[test]
    fn clients_all_participate() {
        let t = trace(6);
        let mut seen = [false; 20];
        for r in &t.requests {
            seen[r.client] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 20 Pis issue requests");
    }

    #[test]
    fn custom_config_respected() {
        let cfg = TraceConfig {
            services: 5,
            total_requests: 200,
            duration: SimDuration::from_secs(60),
            min_per_service: 10,
            clients: 3,
            ..TraceConfig::default()
        };
        let t = Trace::generate(cfg, &mut SimRng::seed_from_u64(7));
        assert_eq!(t.requests.len(), 200);
        assert_eq!(t.service_addrs.len(), 5);
        assert!(t.per_service_counts().iter().all(|&c| c >= 10));
    }

    #[test]
    fn csv_roundtrip() {
        let csv = "time_s,service,client\n0.5,0,1\n1.25,1,0\n0.1,0,2\n";
        let t = Trace::from_csv(csv, 4).unwrap();
        assert_eq!(t.requests.len(), 3);
        assert_eq!(t.service_addrs.len(), 2);
        // sorted by time
        assert!(t.requests[0].at < t.requests[1].at);
        assert_eq!(t.requests[0].client, 2);
        assert_eq!(t.config.clients, 4);
        assert_eq!(t.config.duration, SimDuration::from_secs(2));
    }

    #[test]
    fn csv_roundtrips_generated_trace() {
        let t = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(4));
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv, t.config.clients).unwrap();
        assert_eq!(back.requests.len(), t.requests.len());
        assert_eq!(back.service_addrs, t.service_addrs);
        // times survive to microsecond precision
        for (a, b) in t.requests.iter().zip(&back.requests) {
            assert!((a.at.as_secs_f64() - b.at.as_secs_f64()).abs() < 1e-5);
            assert_eq!(a.service, b.service);
            assert_eq!(a.client, b.client);
        }
    }

    #[test]
    fn csv_rejects_bad_input() {
        assert!(Trace::from_csv("", 1).is_err());
        assert!(Trace::from_csv("a,b,c\n", 1).is_err());
        assert!(Trace::from_csv("time_s,service,client\n", 1).is_err());
        assert!(Trace::from_csv("time_s,service,client\nx,0,0\n", 1).is_err());
        assert!(
            Trace::from_csv("time_s,service,client\n1.0,0,5\n", 2).is_err(),
            "client range"
        );
        assert!(Trace::from_csv("time_s,service,client\n-1,0,0\n", 2).is_err());
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn impossible_floor_panics() {
        let cfg = TraceConfig {
            services: 50,
            total_requests: 100,
            min_per_service: 20,
            ..TraceConfig::default()
        };
        Trace::generate(cfg, &mut SimRng::seed_from_u64(1));
    }
}
