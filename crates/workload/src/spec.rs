//! The workload engine's front door: a named-model registry (the same shape
//! as `edgectl::SchedulerRegistry`) plus [`WorkloadConfig`], the full
//! description of a generated workload — which arrival model, the service
//! mix, the model knobs, and the client-mobility rate.
//!
//! `WorkloadConfig::default()` is the paper's bigFlows replay with no
//! mobility: generating it consumes the RNG byte-identically to the
//! historical `Trace::generate`, so every pinned hash replays unchanged.

use simcore::{SimDuration, SimRng};

use crate::arrival::{self, ArrivalModel};
use crate::bigflows::{Trace, TraceConfig};
use crate::mix::ServiceMix;
use crate::mobility::{generate_handovers, MOBILITY_STREAM};

/// A workload description: model name (resolved through
/// [`WorkloadRegistry`]), the service mix, per-model knobs, and mobility.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Registry name or alias of the arrival model.
    pub model: String,
    /// The service population and popularity law (services, requests,
    /// window, clients, Zipf exponent, per-service floor).
    pub mix: TraceConfig,
    /// Expected handovers per client over the window; `0` = static clients.
    pub handovers_per_client: f64,
    /// Flash crowd: when the spike starts.
    pub spike_at: SimDuration,
    /// Flash crowd: how long the spike lasts.
    pub spike_window: SimDuration,
    /// Flash crowd: fraction of all requests concentrated in the spike.
    pub spike_fraction: f64,
    /// MMPP: ON-phase length.
    pub burst_on: SimDuration,
    /// MMPP: OFF-phase length.
    pub burst_off: SimDuration,
    /// MMPP: ON-phase rate multiplier (≥ 1).
    pub burst_ratio: f64,
    /// Diurnal: peak position as a fraction of the window, in `[0, 1)`.
    pub diurnal_peak: f64,
    /// Diurnal: rate swing around the mean, in `[0, 1)`.
    pub diurnal_amplitude: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            model: "bigflows".into(),
            mix: TraceConfig::default(),
            handovers_per_client: 0.0,
            spike_at: SimDuration::from_secs(10),
            spike_window: SimDuration::from_secs(5),
            spike_fraction: 0.5,
            burst_on: SimDuration::from_secs(5),
            burst_off: SimDuration::from_secs(20),
            burst_ratio: 9.0,
            diurnal_peak: 0.5,
            diurnal_amplitude: 0.8,
        }
    }
}

impl WorkloadConfig {
    /// Generate the trace this config describes. Deterministic in
    /// `(self, rng seed)`; fails only on an unknown model name (validated
    /// earlier by scenario parsing — see `testbed::scenario_from_yaml`).
    ///
    /// RNG discipline: arrival draws consume `rng` directly (byte-identical
    /// to the historical bigFlows path for the default config); the mobility
    /// schedule runs on the derived [`MOBILITY_STREAM`], which never
    /// advances `rng` — the same seed gives the same requests with mobility
    /// on or off.
    pub fn generate(&self, rng: &mut SimRng) -> Result<Trace, UnknownModel> {
        let model = WorkloadRegistry::builtin().create(self)?;
        let config = self.mix.clone();
        assert!(config.services > 0 && config.clients > 0);
        assert!(
            config.total_requests >= config.services * config.min_per_service,
            "total_requests cannot satisfy the per-service floor"
        );
        let mix = ServiceMix::new(&config);
        let counts = model.reshape_counts(mix.counts(rng), &mix);
        debug_assert_eq!(counts.iter().sum::<usize>(), config.total_requests);
        let service_addrs = mix.service_addrs();
        let mut requests = Vec::with_capacity(config.total_requests);
        for (svc, &count) in counts.iter().enumerate() {
            model.generate_service(svc, count, &mix, rng, &mut requests);
        }
        requests.sort_by_key(|r| (r.at, r.service, r.client));
        let handovers = if self.handovers_per_client > 0.0 {
            let mut mobility_rng = rng.stream(MOBILITY_STREAM);
            generate_handovers(
                config.clients,
                config.duration,
                self.handovers_per_client,
                &mut mobility_rng,
            )
        } else {
            Vec::new()
        };
        Ok(Trace {
            requests,
            service_addrs,
            config,
            handovers,
        })
    }
}

/// Typed "no such workload model" error — the same shape as
/// `edgectl::UnknownPolicy`, listing what the registry does know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModel {
    pub requested: String,
    pub available: Vec<&'static str>,
}

impl std::fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload model `{}` (available: {})",
            self.requested,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for UnknownModel {}

/// One registered arrival model.
#[derive(Debug)]
pub struct ModelEntry {
    pub name: &'static str,
    pub aliases: &'static [&'static str],
    pub description: &'static str,
    factory: fn(&WorkloadConfig) -> Box<dyn ArrivalModel>,
}

/// Name → arrival-model registry. `builtin()` lists every model the engine
/// ships; scenario YAML and the `edgesim workloads` listing both go through
/// it, so the two can never disagree.
pub struct WorkloadRegistry {
    entries: Vec<ModelEntry>,
}

impl WorkloadRegistry {
    pub fn builtin() -> WorkloadRegistry {
        WorkloadRegistry {
            entries: vec![
                ModelEntry {
                    name: "bigflows",
                    aliases: &["big-flows", "paper"],
                    description:
                        "the paper's bigFlows replay shape (front-loaded first-seen, default)",
                    factory: arrival::bigflows_factory,
                },
                ModelEntry {
                    name: "poisson",
                    aliases: &[],
                    description: "homogeneous Poisson arrivals over the whole window",
                    factory: arrival::poisson_factory,
                },
                ModelEntry {
                    name: "mmpp",
                    aliases: &["bursty"],
                    description: "Markov-modulated Poisson: ON/OFF bursts per service",
                    factory: arrival::mmpp_factory,
                },
                ModelEntry {
                    name: "diurnal",
                    aliases: &["diurnal-curve"],
                    description: "sinusoidal diurnal rate curve (a compressed day)",
                    factory: arrival::diurnal_factory,
                },
                ModelEntry {
                    name: "flash-crowd",
                    aliases: &["flashcrowd", "spike"],
                    description: "thousands of clients slam one cold service in a short window",
                    factory: arrival::flash_crowd_factory,
                },
            ],
        }
    }

    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Canonical model names, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Look a model up by name or alias.
    pub fn resolve(&self, name: &str) -> Result<&ModelEntry, UnknownModel> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
            .ok_or_else(|| UnknownModel {
                requested: name.to_string(),
                available: self.names(),
            })
    }

    /// Build the arrival model `cfg.model` names, configured by `cfg`.
    pub fn create(&self, cfg: &WorkloadConfig) -> Result<Box<dyn ArrivalModel>, UnknownModel> {
        Ok((self.resolve(&cfg.model)?.factory)(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_names_and_aliases() {
        let r = WorkloadRegistry::builtin();
        assert_eq!(r.resolve("bigflows").unwrap().name, "bigflows");
        assert_eq!(r.resolve("paper").unwrap().name, "bigflows");
        assert_eq!(r.resolve("bursty").unwrap().name, "mmpp");
        assert_eq!(r.resolve("spike").unwrap().name, "flash-crowd");
        assert_eq!(
            r.names(),
            vec!["bigflows", "poisson", "mmpp", "diurnal", "flash-crowd"]
        );
    }

    #[test]
    fn unknown_model_lists_available() {
        let err = WorkloadRegistry::builtin().resolve("tsunami").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown workload model `tsunami`"), "{msg}");
        assert!(msg.contains("flash-crowd"), "{msg}");
        assert!(msg.contains("diurnal"), "{msg}");
    }

    #[test]
    fn default_config_generates_paper_marginals() {
        let trace = WorkloadConfig::default()
            .generate(&mut SimRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(trace.requests.len(), 1708);
        assert_eq!(trace.service_addrs.len(), 42);
        assert!(trace.handovers.is_empty());
    }

    /// The workload engine's default path and the historical
    /// `Trace::generate` must be the same byte stream — the pinned seed-42
    /// metrics hash depends on it.
    #[test]
    fn default_matches_legacy_generate() {
        let a = WorkloadConfig::default()
            .generate(&mut SimRng::seed_from_u64(42))
            .unwrap();
        let b = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(42));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.service_addrs, b.service_addrs);
    }

    #[test]
    fn mobility_never_perturbs_arrivals() {
        let without = WorkloadConfig::default()
            .generate(&mut SimRng::seed_from_u64(5))
            .unwrap();
        let with = WorkloadConfig {
            handovers_per_client: 2.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut SimRng::seed_from_u64(5))
        .unwrap();
        assert_eq!(without.requests, with.requests);
        assert!(without.handovers.is_empty());
        assert_eq!(with.handovers.len(), 40, "2 handovers x 20 clients");
    }

    #[test]
    fn every_model_generates_exact_totals() {
        for name in WorkloadRegistry::builtin().names() {
            let cfg = WorkloadConfig {
                model: name.into(),
                ..WorkloadConfig::default()
            };
            let trace = cfg.generate(&mut SimRng::seed_from_u64(3)).unwrap();
            assert_eq!(trace.requests.len(), 1708, "{name}");
            assert_eq!(trace.service_addrs.len(), 42, "{name}");
            let horizon = trace.config.duration.as_secs_f64();
            assert!(
                trace
                    .requests
                    .iter()
                    .all(|r| r.at.as_secs_f64() <= horizon && r.client < 20),
                "{name}: request out of range"
            );
            assert!(
                trace.requests.windows(2).all(|w| w[0].at <= w[1].at),
                "{name}: not time-sorted"
            );
        }
    }

    #[test]
    fn unknown_model_fails_generation() {
        let cfg = WorkloadConfig {
            model: "nope".into(),
            ..WorkloadConfig::default()
        };
        let err = cfg.generate(&mut SimRng::seed_from_u64(1)).unwrap_err();
        assert_eq!(err.requested, "nope");
    }
}
