//! timecurl semantics: the paper measures `time_total` — "everything from
//! when Curl starts establishing a TCP connection until it gets a response
//! for the HTTP request". This module carries the per-service HTTP exchange
//! shape and the timing breakdown the testbed records per request.

use simcore::{SimDuration, SimTime};

use crate::services::ServiceProfile;

/// The wire shape of one HTTP exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpExchange {
    pub request_bytes: u64,
    pub response_bytes: u64,
}

impl HttpExchange {
    pub fn for_service(profile: &ServiceProfile) -> HttpExchange {
        HttpExchange {
            request_bytes: profile.request_bytes,
            response_bytes: profile.response_bytes,
        }
    }
}

/// One measured request, as timecurl would log it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// When curl started connecting.
    pub started: SimTime,
    /// When the full response arrived.
    pub finished: SimTime,
    /// Which trace service this was.
    pub service: usize,
    pub client: usize,
    /// Did this request trigger a deployment (first request to the service)?
    pub triggered_deployment: bool,
}

impl RequestRecord {
    /// Curl's `time_total`.
    pub fn time_total(&self) -> SimDuration {
        self.finished - self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::ServiceKind;

    #[test]
    fn exchange_mirrors_profile() {
        let p = ServiceProfile::of(ServiceKind::ResNet);
        let e = HttpExchange::for_service(&p);
        assert_eq!(e.request_bytes, 83 * 1024);
        assert_eq!(e.response_bytes, p.response_bytes);
    }

    #[test]
    fn time_total_is_difference() {
        let r = RequestRecord {
            started: SimTime::from_secs_f64(1.0),
            finished: SimTime::from_secs_f64(1.5),
            service: 0,
            client: 3,
            triggered_deployment: true,
        };
        assert_eq!(r.time_total(), SimDuration::from_millis(500));
    }
}
