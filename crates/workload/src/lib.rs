//! # workload — evaluation services and traffic
//!
//! * [`services`] — the four edge services of paper Table I (asmttpd, Nginx,
//!   TensorFlow-Serving ResNet50, Nginx+Python) with their image shapes,
//!   app-init behaviour and per-request cost,
//! * [`bigflows`] — a synthetic stand-in for the `bigFlows.pcap` capture the
//!   paper replays: 42 services, 1708 requests, five minutes, every service
//!   receiving ≥ 20 requests, with the bursty start that produces up to
//!   ~8 deployments/s (Figs. 9–10),
//! * [`client`] — timecurl semantics: what `time_total` measures,
//! * [`arrival`], [`mix`], [`mobility`], [`spec`] — the workload engine:
//!   pluggable arrival models (Poisson, MMPP bursts, diurnal curves,
//!   flash crowds) behind a named-model registry, a service-mix model
//!   decoupled from the bigFlows generator, and client mobility (mid-session
//!   ingress handovers). The default [`WorkloadConfig`] replays bigFlows
//!   byte-identically.

pub mod arrival;
pub mod bigflows;
pub mod client;
pub mod mix;
pub mod mobility;
pub mod services;
pub mod spec;

pub use arrival::ArrivalModel;
pub use bigflows::{Trace, TraceConfig, TraceRequest};
pub use client::HttpExchange;
pub use mix::ServiceMix;
pub use mobility::{departures, generate_handovers, ingress_at, Handover};
pub use services::{ServiceKind, ServiceProfile};
pub use spec::{ModelEntry, UnknownModel, WorkloadConfig, WorkloadRegistry};
