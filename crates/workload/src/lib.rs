//! # workload — evaluation services and traffic
//!
//! * [`services`] — the four edge services of paper Table I (asmttpd, Nginx,
//!   TensorFlow-Serving ResNet50, Nginx+Python) with their image shapes,
//!   app-init behaviour and per-request cost,
//! * [`bigflows`] — a synthetic stand-in for the `bigFlows.pcap` capture the
//!   paper replays: 42 services, 1708 requests, five minutes, every service
//!   receiving ≥ 20 requests, with the bursty start that produces up to
//!   ~8 deployments/s (Figs. 9–10),
//! * [`client`] — timecurl semantics: what `time_total` measures.

pub mod bigflows;
pub mod client;
pub mod services;

pub use bigflows::{Trace, TraceConfig, TraceRequest};
pub use client::HttpExchange;
pub use services::{ServiceKind, ServiceProfile};
