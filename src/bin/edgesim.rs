//! `edgesim` — the command-line front end to the transparent-edge simulator.
//!
//! ```text
//! edgesim run <scenario.yaml>            replay the bigFlows trace under a scenario
//! edgesim first-request <scenario.yaml>  measure one on-demand first request
//! edgesim annotate <service.yaml> --name <svc> --port <p> [--scheduler <name>]
//!                                        print the annotated Deployment + Service
//! edgesim verify <file.yaml>             statically verify a scenario (runs it with
//!                                        the edgeverify auditor) or a service
//!                                        definition (annotate + lint)
//! edgesim trace [--seed N]               print the generated workload trace summary
//! edgesim workloads                      list the workload arrival models
//! ```
//!
//! Scenario files are documented in `testbed::config`; an empty file runs the
//! paper's default setup (Nginx on Docker, with waiting, 20 clients).

use std::process::ExitCode;

use edgectl::{annotate_documents, AnnotateOptions, SchedulerRegistry, SchedulerSpec};
use simcore::{Percentiles, SimRng};
use testbed::{
    run_bigflows, run_bigflows_audited, run_trace_scenario, scenario_from_yaml, ScenarioConfig,
    Testbed,
};
use workload::{Trace, TraceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("first-request") => cmd_first_request(&args[1..]),
        Some("annotate") => cmd_annotate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("fabric") => cmd_fabric(&args[1..]),
        Some("schedulers") => cmd_schedulers(),
        Some("workloads") => cmd_workloads(),
        Some("lint") => cmd_lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("edgesim: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  edgesim run <scenario.yaml> [--trace <trace.csv>] [--scheduler <name>]
              [--dump-trace <path>] [--threads <n>]
  edgesim first-request <scenario.yaml>
  edgesim annotate <service.yaml> --name <svc> --port <port> [--scheduler <name>]
  edgesim verify <scenario-or-service.yaml> [--name <svc>] [--port <port>]
  edgesim trace [--seed N]
  edgesim fabric [--switches N] [--no-roam]
  edgesim schedulers                      list the global-scheduler policies
  edgesim workloads                       list the workload arrival models
  edgesim lint [--root <dir>]             determinism lint over the sim crates";

fn load_scenario(args: &[String]) -> Result<ScenarioConfig, String> {
    let path = args.first().ok_or("missing scenario file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = yamlite::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    scenario_from_yaml(&doc)
}

fn cmd_schedulers() -> Result<(), String> {
    let registry = SchedulerRegistry::builtin();
    let width = registry
        .entries()
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0);
    for entry in registry.entries() {
        let aliases = if entry.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", entry.aliases.join(", "))
        };
        println!(
            "{:width$}  {}{aliases}",
            entry.name,
            entry.description,
            width = width
        );
    }
    Ok(())
}

/// `edgesim workloads` — list the arrival models the workload engine ships,
/// exactly as the `workload:` scenario block accepts them (both go through
/// [`workload::WorkloadRegistry`], so this listing can never drift).
fn cmd_workloads() -> Result<(), String> {
    let registry = workload::WorkloadRegistry::builtin();
    let width = registry
        .entries()
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0);
    for entry in registry.entries() {
        let aliases = if entry.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", entry.aliases.join(", "))
        };
        println!(
            "{:width$}  {}{aliases}",
            entry.name,
            entry.description,
            width = width
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut cfg = load_scenario(args)?;
    if let Some(i) = args.iter().position(|a| a == "--scheduler") {
        let name = args.get(i + 1).ok_or("--scheduler needs a policy name")?;
        SchedulerRegistry::builtin()
            .resolve(name)
            .map_err(|e| e.to_string())?;
        cfg.scheduler = SchedulerSpec::named(name);
    }
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));
    // `--dump-trace <path>`: write the canonical metrics trace (the byte
    // stream behind every pinned hash) to a file. The replay-determinism
    // harness diffs this against an in-process run to catch ambient-state
    // nondeterminism that only shows across process boundaries.
    let dump_path = args
        .iter()
        .position(|a| a == "--dump-trace")
        .map(|i| args.get(i + 1).ok_or("--dump-trace needs a file path"))
        .transpose()?;
    // `--threads <n>`: worker threads for the windowed mesh engine,
    // overriding the scenario's `mesh.threads`. The mesh trace hash is
    // identical for every accepted value; values above `mesh.shards` are
    // rejected (extra workers could only idle).
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or("--threads needs a positive integer")?;
        cfg.mesh.threads =
            edgemesh::validate_threads(n, cfg.mesh.shards).map_err(|e| e.to_string())?;
    }
    if cfg.mesh.shards > 1 {
        if trace_path.is_some() {
            return Err("--trace is not supported for mesh (shards > 1) scenarios yet".into());
        }
        return run_mesh(cfg, dump_path);
    }
    let (trace, result) = match trace_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let trace = Trace::from_csv(&text, cfg.clients)?;
            let result = run_trace_scenario(cfg, &trace);
            (trace, result)
        }
        None => run_bigflows(cfg),
    };
    if let Some(path) = dump_path {
        std::fs::write(path, result.metrics_trace()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "metrics trace written to {path} (hash {:#018x})",
            result.metrics_hash()
        );
    }
    let mut p = Percentiles::new();
    for r in &result.records {
        p.record_duration(r.time_total());
    }
    println!(
        "requests: {} ({} lost) over {}s, services: {}",
        result.records.len(),
        result.lost,
        trace.config.duration.as_secs(),
        trace.service_addrs.len()
    );
    println!(
        "deployments: {} ({} proactive), held: {}, detoured: {}, cloud: {}, scale-downs: {}, retargets: {}",
        result.deployments.len(),
        result.proactive_deployments,
        result.held_requests,
        result.detoured_requests,
        result.cloud_forwards,
        result.scale_downs,
        result.retargets
    );
    if result.handovers > 0 {
        println!(
            "handovers: {} (mid-session ingress moves)",
            result.handovers
        );
    }
    if result.admission_rejections > 0 || result.capacity_violations > 0 {
        println!(
            "admission: {} rejections, {} capacity violations",
            result.admission_rejections, result.capacity_violations
        );
    }
    println!(
        "time_total: median {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        p.median(),
        p.p90(),
        p.p99(),
        p.max()
    );
    let first = result.median_first_request_ms();
    if first.is_finite() {
        println!("deployment-triggering requests: median {first:.2} ms");
    }
    println!(
        "switch: {} packets, {} hits, {} misses; controller memory hits: {}",
        result.switch_stats.packets,
        result.switch_stats.table_hits,
        result.switch_stats.table_misses,
        result.memory_hits
    );
    Ok(())
}

/// `edgesim run` for a federated scenario (`mesh.shards > 1`): replay the
/// bigFlows trace through the sharded mesh and report the coordination
/// metrics alongside the usual counters.
fn run_mesh(cfg: ScenarioConfig, dump_path: Option<&String>) -> Result<(), String> {
    let (trace, result) = edgemesh::run_mesh_bigflows(cfg);
    if let Some(path) = dump_path {
        std::fs::write(path, result.mesh_trace()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "mesh trace written to {path} (hash {:#018x})",
            result.mesh_hash()
        );
    }
    println!(
        "mesh: {} shards on {} worker thread{}, leases {}; {} windows ({:.2} barrier stalls/window), {} events",
        result.shards,
        result.threads,
        if result.threads == 1 { "" } else { "s" },
        if result.leases { "on" } else { "off" },
        result.windows,
        result.stalls_per_window(),
        result.events
    );
    println!(
        "requests: {} ({} lost) over {}s, services: {}",
        result.completed,
        result.lost,
        trace.config.duration.as_secs(),
        trace.service_addrs.len()
    );
    println!(
        "deployments: {} ({} duplicates, {} avoided by leases), scale-downs: {}, removes: {}, retargets: {}",
        result.deployments,
        result.duplicate_deployments,
        result.duplicate_deployments_avoided,
        result.scale_downs,
        result.removes,
        result.retargets
    );
    if result.handovers > 0 {
        println!(
            "handovers: {} (mid-session ingress moves)",
            result.handovers
        );
    }
    println!(
        "gossip: {} deltas sent ({} lost on link), {} delivered; staleness mean {:.2} ms, convergence mean {:.2} ms",
        result.deltas_sent,
        result.deltas_lost,
        result.delta_deliveries,
        result.mean_staleness_ms(),
        result.mean_convergence_ms()
    );
    for (i, s) in result.shard_stats.iter().enumerate() {
        println!(
            "shard {i}: deployments {}, memory hits {}, cloud {}, held {}, detoured {}, retargets {}, lease rejections {}, remote deltas {}",
            s.deployments,
            s.memory_hits,
            s.cloud_forwards,
            s.held_requests,
            s.detoured_requests,
            s.retargets,
            s.lease_rejections,
            s.remote_deltas
        );
    }
    Ok(())
}

/// `edgesim lint` — the determinism linter over the simulation crates (the
/// same pass as `cargo run -p edgelint`; see DESIGN.md §5h).
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let mut root = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = args.get(i + 1).ok_or("--root needs a directory")?.clone();
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let violations = edgelint::check_workspace(std::path::Path::new(&root))
        .map_err(|e| format!("{root}: {e}"))?;
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "lint: clean ({} crates checked)",
            edgelint::DETERMINISM_CRATES.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{} determinism violation(s); annotate provably-safe sites with \
             `// edgelint: allow(<lint>) — <reason>`",
            violations.len()
        ))
    }
}

fn cmd_first_request(args: &[String]) -> Result<(), String> {
    let cfg = load_scenario(args)?;
    let addr = simnet::SocketAddr::new(simnet::IpAddr::new(93, 184, 0, 1), 80);
    let testbed = Testbed::build(cfg, vec![addr]);
    let result = testbed.run_single_request();
    match result.records.first() {
        Some(r) => println!("time_total: {}", r.time_total()),
        None => return Err("request was lost (deployment failed?)".into()),
    }
    if let Some(dep) = result.deployments.first() {
        if let Some((a, b)) = dep.pull {
            println!("  pull:     {}", b - a);
        }
        if let Some((a, b)) = dep.create {
            println!("  create:   {}", b - a);
        }
        if let Some((issue, accepted, _)) = dep.scale_up {
            println!("  scale-up: {} (API)", accepted - issue);
        }
        println!("  wait:     {}", dep.wait_time());
        println!("  total:    {}", dep.total());
    } else {
        println!("  (no deployment was needed)");
    }
    Ok(())
}

fn cmd_annotate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing service definition file")?;
    let mut name = None;
    let mut port = None;
    let mut scheduler = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                name = args.get(i + 1).cloned();
                i += 2;
            }
            "--port" => {
                port = args.get(i + 1).and_then(|p| p.parse::<u16>().ok());
                i += 2;
            }
            "--scheduler" => {
                scheduler = args.get(i + 1).cloned();
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let name = name.ok_or("missing --name")?;
    let port = port.ok_or("missing or invalid --port")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let docs = yamlite::parse_all(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut opts = AnnotateOptions::new(name, port);
    opts.local_scheduler = scheduler;
    let out = annotate_documents(&docs, &opts).map_err(|e| e.to_string())?;
    print!("{}", yamlite::to_string_all(&[out.deployment, out.service]));
    Ok(())
}

/// `edgesim verify <file>` — the static flow-rule / service-definition
/// checker. Scenario files are run through the audited testbed (every flow
/// install checked, final fabric + FlowMemory state verified); service
/// definitions are annotated and linted. Exits non-zero on any violation.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing file to verify")?;
    let mut name = None;
    let mut port = 80u16;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                name = args.get(i + 1).cloned();
                i += 2;
            }
            "--port" => {
                port = args
                    .get(i + 1)
                    .and_then(|p| p.parse().ok())
                    .ok_or("bad --port")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let docs = yamlite::parse_all(&text).map_err(|e| format!("{path}: {e}"))?;

    // Kubernetes-shaped documents carry `kind`/`image`/`spec.template`;
    // scenario files carry none of these.
    let is_service_definition = docs.iter().any(|d| {
        d.get("kind").is_some() || d.get("image").is_some() || d.at("spec.template").is_some()
    });

    let violations: Vec<String> = if is_service_definition {
        verify_service_definition(path, &docs, name, port)?
    } else {
        verify_scenario(&docs)?
    };
    for v in &violations {
        println!("violation: {v}");
    }
    if violations.is_empty() {
        println!("verify: {path}: clean");
        Ok(())
    } else {
        Err(format!("{path}: {} violation(s)", violations.len()))
    }
}

fn verify_service_definition(
    path: &str,
    docs: &[yamlite::Yaml],
    name: Option<String>,
    port: u16,
) -> Result<Vec<String>, String> {
    // Default service name: the file stem, as the deployment pipeline would.
    let name = name.unwrap_or_else(|| {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "edge-service".into())
    });
    // A stream that already carries `edge.service` labels is the annotated
    // form — lint it as-is (re-annotating would silently repair defects).
    // Anything else goes through the annotation pipeline first, so the lint
    // sees what the platform would actually deploy.
    let already_annotated = docs.iter().any(|d| {
        [
            "metadata.labels",
            "spec.template.metadata.labels",
            "spec.selector",
        ]
        .iter()
        .any(|p| d.at(p).and_then(|m| m.get("edge.service")).is_some())
    });
    let to_lint = if already_annotated {
        docs.to_vec()
    } else {
        let opts = AnnotateOptions::new(name, port);
        // An annotation failure is itself a verification finding, not a crash.
        match annotate_documents(docs, &opts) {
            Ok(out) => vec![out.deployment, out.service],
            Err(e) => return Ok(vec![format!("lint: {e}")]),
        }
    };
    Ok(edgeverify::lint_annotated(&to_lint)
        .iter()
        .map(|v| v.to_string())
        .collect())
}

fn verify_scenario(docs: &[yamlite::Yaml]) -> Result<Vec<String>, String> {
    let doc = docs.first().ok_or("empty scenario file")?;
    let cfg = scenario_from_yaml(doc)?;
    if cfg.mesh.shards > 1 {
        let (_, result, violations) = edgemesh::run_mesh_bigflows_audited(cfg);
        println!(
            "audited: {} shards, {} requests ({} lost), {} duplicate deployments \
             ({} avoided by leases)",
            result.shards,
            result.completed,
            result.lost,
            result.duplicate_deployments,
            result.duplicate_deployments_avoided
        );
        return Ok(violations.iter().map(|v| v.to_string()).collect());
    }
    let (_, result, report) = run_bigflows_audited(cfg);
    println!(
        "audited: {} requests ({} lost), {} flow installs checked",
        result.records.len(),
        result.lost,
        report.checked_installs
    );
    Ok(report.violations().map(|v| v.to_string()).collect())
}

fn cmd_fabric(args: &[String]) -> Result<(), String> {
    let mut cfg = testbed::FabricConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--switches" => {
                cfg.switches = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --switches")?;
                i += 2;
            }
            "--no-roam" => {
                cfg.roam_at = None;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let r = testbed::run_mobility(cfg);
    println!(
        "fabric run: {} requests ({} lost), deployments per site {:?}",
        r.records.len(),
        r.lost,
        r.deployments_per_site
    );
    println!(
        "median time_total before roam: {:.2} ms, after: {:.2} ms",
        r.median_before_ms, r.median_after_ms
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let seed = match args {
        [flag, value] if flag == "--seed" => value.parse().map_err(|_| "bad --seed")?,
        [] => 1,
        _ => return Err(format!("unexpected arguments\n{USAGE}")),
    };
    let trace = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(seed));
    let counts = trace.per_service_counts();
    println!(
        "trace: {} requests to {} services over {}s (seed {seed})",
        trace.requests.len(),
        trace.service_addrs.len(),
        trace.config.duration.as_secs()
    );
    let mut by_count: Vec<(usize, usize)> = counts.iter().copied().enumerate().collect();
    by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top services:");
    for &(svc, count) in by_count.iter().take(5) {
        println!("  {} — {count} requests", trace.service_addrs[svc]);
    }
    println!(
        "per-service counts: min {}, max {}",
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap()
    );
    Ok(())
}
