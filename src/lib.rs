//! Umbrella crate: re-exports every subsystem of the transparent-edge
//! reproduction so examples and integration tests have one import root.
//! See README.md for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.

pub use cluster;
pub use containers;
pub use edgectl;
pub use registry;
pub use simcore;
pub use simnet;
pub use testbed;
pub use workload;
pub use yamlite;
