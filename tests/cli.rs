//! Integration tests of the `edgesim` binary itself (spawned as a real
//! process, like a downstream user would run it).

use std::io::Write;
use std::process::Command;

fn edgesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edgesim"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("transparent-edge-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn help_prints_usage() {
    let out = edgesim().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("edgesim run"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = edgesim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn trace_command_reports_paper_marginals() {
    let out = edgesim().args(["trace", "--seed", "2"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1708 requests to 42 services"), "{text}");
}

#[test]
fn run_command_with_scenario_file() {
    let scenario = write_temp("scenario.yaml", "seed: 3\nservice: Nginx\nphase: created\n");
    let out = edgesim().arg("run").arg(&scenario).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests: 1708 (0 lost)"), "{text}");
    assert!(text.contains("deployments: 42"), "{text}");
}

#[test]
fn run_command_rejects_bad_scenario() {
    let scenario = write_temp("bad.yaml", "sevice: Nginx\n");
    let out = edgesim().arg("run").arg(&scenario).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scenario key"), "{err}");
}

#[test]
fn run_command_with_csv_trace() {
    let scenario = write_temp("s2.yaml", "seed: 1\n");
    let trace = write_temp(
        "t.csv",
        "time_s,service,client\n0.5,0,0\n1.0,0,1\n2.0,1,2\n",
    );
    let out = edgesim()
        .arg("run")
        .arg(&scenario)
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests: 3 (0 lost)"), "{text}");
}

#[test]
fn annotate_command_emits_two_documents() {
    let svc = write_temp("svc.yaml", "image: nginx:1.23.2\n");
    let out = edgesim()
        .arg("annotate")
        .arg(&svc)
        .args(["--name", "edge-web", "--port", "80"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kind: Deployment"), "{text}");
    assert!(text.contains("kind: Service"), "{text}");
    assert!(text.contains("edge.service: edge-web"), "{text}");
    assert!(text.contains("replicas: 0"), "{text}");
    // the output is itself a valid two-document stream
    let docs = yamlite::parse_all(&text).unwrap();
    assert_eq!(docs.len(), 2);
}

#[test]
fn annotate_requires_name_and_port() {
    let svc = write_temp("svc2.yaml", "image: nginx:1.23.2\n");
    let out = edgesim().arg("annotate").arg(&svc).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn fabric_command_runs() {
    let out = edgesim().args(["fabric", "--no-roam"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("deployments per site"), "{text}");
}

#[test]
fn first_request_breakdown() {
    let scenario = write_temp("s3.yaml", "seed: 4\nphase: cold\n");
    let out = edgesim()
        .arg("first-request")
        .arg(&scenario)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("time_total:"), "{text}");
    assert!(text.contains("pull:"), "{text}");
    assert!(text.contains("scale-up:"), "{text}");
}

#[test]
fn annotate_with_custom_scheduler_flag() {
    let svc = write_temp("svc3.yaml", "image: nginx:1.23.2\n");
    let out = edgesim()
        .arg("annotate")
        .arg(&svc)
        .args([
            "--name",
            "edge-web",
            "--port",
            "80",
            "--scheduler",
            "edge-matcher",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schedulerName: edge-matcher"), "{text}");
}

#[test]
fn run_hierarchical_scenario_from_yaml() {
    let scenario = write_temp(
        "hier.yaml",
        "seed: 5\nscheduler: without-waiting\nsites:\n  - name: near\n    class: pi\n    latency_ms: 0.3\n    nodes: 8\n    backend: docker\n  - name: far\n    class: egs\n    latency_ms: 8\n    backend: docker\nphase: running\nprewarm_sites: [1]\n",
    );
    let out = edgesim().arg("run").arg(&scenario).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("cloud: 0"),
        "warm far edge absorbs detours: {text}"
    );
    assert!(text.contains("retargets:"), "{text}");
}

#[test]
fn verify_clean_scenario_exits_zero() {
    let scenario = write_temp(
        "verify-clean.yaml",
        "seed: 3\nservice: Nginx\nphase: created\n",
    );
    let out = edgesim().arg("verify").arg(&scenario).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("flow installs checked"), "{text}");
    assert!(text.contains("clean"), "{text}");
}

#[test]
fn verify_seeded_shadowed_rule_exits_nonzero_and_names_the_rule() {
    // The /16 punt at priority 50 fully covers the priority-40 exact match:
    // the second pre-provisioned rule can never fire.
    let scenario = write_temp(
        "verify-shadowed.yaml",
        "seed: 3\nphase: created\nseed_flows:\n  - priority: 50\n    match:\n      dst_net: 93.184.0.0/16\n    actions: [to-controller]\n  - priority: 40\n    match:\n      protocol: tcp\n      dst_ip: 93.184.0.1\n      dst_port: 80\n    actions: [to-controller]\n",
    );
    let out = edgesim().arg("verify").arg(&scenario).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violation: shadowed:"), "{text}");
    assert!(text.contains("flow #"), "{text}");
}

#[test]
fn verify_service_definition_clean_and_broken() {
    let svc = write_temp("verify-svc.yaml", "image: nginx:1.23.2\n");
    let out = edgesim().arg("verify").arg(&svc).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    // An already-annotated Deployment pinning replicas to 3 violates the
    // scale-to-zero lint (and is linted as-is, not silently re-annotated).
    let bad = write_temp(
        "verify-svc-bad.yaml",
        "kind: Deployment\nmetadata:\n  name: edge-web\n  labels:\n    edge.service: edge-web\nspec:\n  replicas: 3\n  selector:\n    matchLabels:\n      edge.service: edge-web\n  template:\n    metadata:\n      labels:\n        edge.service: edge-web\n    spec:\n      containers:\n        - image: nginx:1.23.2\n",
    );
    let out = edgesim().arg("verify").arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violation: lint:"), "{text}");
    assert!(text.contains("spec.replicas"), "{text}");
}
