//! Runtime half of the determinism contract (DESIGN.md §5h): a run is a pure
//! function of (scenario, seed). `edgelint` proves the *sources* are free of
//! ambient state; this harness proves the *runtime* is — the seed-42 bigFlows
//! replay must produce a byte-identical metrics trace twice in-process AND in
//! a fresh `edgesim` subprocess, where a new SipHash seed, ASLR layout and
//! environment would expose anything the static pass missed.

use std::io::Write;
use std::process::Command;

use testbed::{run_bigflows, ScenarioConfig};

/// The pinned seed-42 hash from `tests/experiments_regression.rs` and the
/// cityscale/mesh/sched CI gates.
const SEED42_HASH: u64 = 0x66cc06e4f4d26b1a;

fn seed42_trace() -> (String, u64) {
    let (_, result) = run_bigflows(ScenarioConfig {
        seed: 42,
        ..ScenarioConfig::default()
    });
    (result.metrics_trace(), result.metrics_hash())
}

#[test]
fn seed42_replay_is_byte_identical_in_process() {
    let (first, first_hash) = seed42_trace();
    let (second, second_hash) = seed42_trace();
    assert_eq!(first_hash, SEED42_HASH, "pinned seed-42 hash drifted");
    assert_eq!(second_hash, first_hash);
    assert_eq!(
        first, second,
        "two in-process seed-42 replays diverged byte-for-byte"
    );
}

#[test]
fn seed42_replay_is_byte_identical_across_processes() {
    let (in_process, in_process_hash) = seed42_trace();
    assert_eq!(in_process_hash, SEED42_HASH, "pinned seed-42 hash drifted");

    let dir = std::env::temp_dir().join("transparent-edge-replay-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("seed42.yaml");
    std::fs::File::create(&scenario)
        .unwrap()
        .write_all(b"seed: 42\n")
        .unwrap();
    let dump = dir.join("seed42.trace");

    // A fresh process gets a fresh HashMap SipHash key, heap layout and
    // environment — any dependence on those shows up as a trace diff here.
    let out = Command::new(env!("CARGO_BIN_EXE_edgesim"))
        .arg("run")
        .arg(&scenario)
        .arg("--dump-trace")
        .arg(&dump)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "edgesim run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let subprocess = std::fs::read_to_string(&dump).unwrap();
    assert_eq!(
        in_process, subprocess,
        "subprocess seed-42 replay diverged from the in-process trace"
    );
}
