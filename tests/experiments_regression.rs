//! Regression net over the experiment harness: every table/figure generator
//! runs and its shape assertions hold on a small seed set. Keeps the
//! committed EXPERIMENTS.md reproducible as the model evolves.

fn seeds() -> Vec<u64> {
    (1..=5).collect()
}

#[test]
fn table1_matches_paper_exactly() {
    let t = bench::experiments::table1().table.render();
    for needle in [
        "6.18 KiB", "135 MiB", "308 MiB", "181 MiB", "POST", "Nginx+Py",
    ] {
        assert!(t.contains(needle), "Table I missing {needle}:\n{t}");
    }
}

#[test]
fn fig09_and_fig10_marginals() {
    let e9 = bench::experiments::fig09(1);
    assert!(
        e9.notes[0].contains("1708 requests to 42 services"),
        "{:?}",
        e9.notes
    );
    let e10 = bench::experiments::fig10(1);
    assert!(e10.notes[0].contains("42 deployments"), "{:?}", e10.notes);
}

fn parse_first_ms(cell: &str) -> f64 {
    // "462.3 ms [..]" or "2.814 s [..]"
    let mut parts = cell.split_whitespace();
    let v: f64 = parts.next().unwrap().parse().unwrap();
    match parts.next().unwrap() {
        "s" => v * 1000.0,
        _ => v,
    }
}

#[test]
fn fig11_shape_docker_fast_k8s_slow() {
    let e = bench::experiments::fig11(&seeds());
    let rendered = e.table.render();
    let nginx_row: Vec<&str> = rendered
        .lines()
        .find(|l| l.starts_with("Nginx "))
        .expect("nginx row")
        .split("  ")
        .filter(|c| !c.trim().is_empty())
        .collect();
    let docker_ms = parse_first_ms(nginx_row[1].trim());
    let k8s_ms = parse_first_ms(nginx_row[2].trim());
    assert!(
        docker_ms < 1000.0,
        "Docker {docker_ms} ms must stay under 1 s"
    );
    assert!(
        (2000.0..4000.0).contains(&k8s_ms),
        "K8s {k8s_ms} ms must stay ~3 s"
    );
}

#[test]
fn fig13_private_registry_saves_seconds() {
    let e = bench::experiments::fig13(&seeds());
    let rendered = e.table.render();
    let nginx_row = rendered.lines().find(|l| l.starts_with("Nginx ")).unwrap();
    assert!(
        nginx_row.contains("s"),
        "pull times are in seconds: {nginx_row}"
    );
    assert!(
        e.notes[0].contains("saves"),
        "saving note present: {:?}",
        e.notes
    );
}

#[test]
fn fig16_running_instance_is_milliseconds() {
    let e = bench::experiments::fig16(&seeds());
    let rendered = e.table.render();
    let asm_row = rendered.lines().find(|l| l.starts_with("Asm ")).unwrap();
    // both columns must render as sub-10ms values
    assert!(asm_row.contains("ms"), "{asm_row}");
    let resnet_row = rendered.lines().find(|l| l.starts_with("ResNet ")).unwrap();
    assert!(resnet_row.contains("ms"), "{resnet_row}");
}

/// The canonical metrics hash of the seed-42 bigFlows replay at 1× — the
/// same constant `cityscale --expect-hash-1x` pins in CI. A change here means
/// the simulation's observable behaviour changed, which a pure performance
/// PR must not do.
const CITYSCALE_1X_HASH: u64 = 0x66cc06e4f4d26b1a;

/// Exactly the `cityscale` benchmark's 1× run (same trace rng, same site
/// scaling).
fn cityscale_run(scale: usize) -> testbed::RunResult {
    use cluster::ClusterKind;
    use testbed::{ScenarioConfig, SiteSpec, Testbed};
    use workload::{Trace, TraceConfig};

    const SEED: u64 = 42;
    let mut trace_rng = simcore::SimRng::seed_from_u64(SEED ^ 0xB16F_1085);
    let trace = Trace::generate(TraceConfig::scaled(scale), &mut trace_rng);
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        sites: vec![(
            SiteSpec::egs("egs-0").with_nodes(scale),
            ClusterKind::Docker,
        )],
        ..ScenarioConfig::default()
    };
    let testbed = Testbed::build(cfg, trace.service_addrs.to_vec());
    testbed.run_trace(&trace)
}

#[test]
fn bigflows_seed42_replay_is_bit_identical() {
    // Pinned hash: the timing-wheel queue, ServiceId interning and the
    // allocation-lean packet path must not change a single observable metric.
    assert_eq!(
        cityscale_run(1).metrics_hash(),
        CITYSCALE_1X_HASH,
        "1x determinism hash drifted — observable simulation behaviour changed"
    );
}

#[test]
fn bigflows_replay_identical_across_thread_counts() {
    // Each run is a pure function of (config, seed); the chunked-claiming
    // runner must return byte-identical traces for threads ∈ {1, 8}.
    let replay = |threads: usize| {
        simcore::run_seeds(&[42, 43, 44], threads, |seed| {
            let (_, r) = testbed::run_bigflows(testbed::ScenarioConfig::default().with_seed(seed));
            r.metrics_trace()
        })
    };
    let one = replay(1);
    let eight = replay(8);
    assert_eq!(one, eight, "metrics traces differ across thread counts");
    // And the seed-42 single run through run_seeds equals the direct run.
    let (_, direct) = testbed::run_bigflows(testbed::ScenarioConfig::default().with_seed(42));
    assert_eq!(one[0], direct.metrics_trace());
}

#[test]
fn extension_experiments_render() {
    let seeds: Vec<u64> = (1..=2).collect();
    for e in [
        bench::experiments::hierarchy(&seeds),
        bench::experiments::proactive(&seeds),
        bench::experiments::futurework_wasm(&seeds),
    ] {
        let s = e.render();
        assert!(s.contains(e.id), "{s}");
        assert!(s.lines().count() > 5, "{s}");
    }
}
