//! Scale and accounting-invariant tests: a workload several times the
//! paper's size must run quickly, deterministically, and with every counter
//! adding up.

use cluster::ClusterKind;
use simcore::{SimDuration, SimRng};
use testbed::topology::SiteSpec;
use testbed::{run_trace_scenario, ScenarioConfig, Testbed};
use workload::{Trace, TraceConfig};

#[test]
fn ten_thousand_requests_two_hundred_services() {
    let cfg = TraceConfig {
        services: 200,
        total_requests: 10_000,
        duration: SimDuration::from_secs(600),
        min_per_service: 10,
        clients: 40,
        ..TraceConfig::default()
    };
    let trace = Trace::generate(cfg, &mut SimRng::seed_from_u64(1));
    assert_eq!(trace.requests.len(), 10_000);

    // 200 concurrent nginx instances need ~50 cores: an 8-node EGS rack
    // (the single-EGS default tops out at 48 instances — the controller
    // then degrades gracefully to cloud forwarding, tested separately).
    let scenario = ScenarioConfig {
        clients: 40,
        seed: 1,
        sites: vec![(SiteSpec::egs("rack").with_nodes(8), ClusterKind::Docker)],
        ..ScenarioConfig::default()
    };
    let started = std::time::Instant::now();
    let result = run_trace_scenario(scenario, &trace);
    let wall = started.elapsed();

    // correctness at scale
    assert_eq!(result.records.len(), 10_000);
    assert_eq!(result.lost, 0);
    assert_eq!(result.deployments.len(), 200, "one deployment per service");

    // accounting identities
    let st = result.switch_stats;
    assert_eq!(
        st.packets,
        st.table_hits + st.table_misses,
        "every packet hits or misses"
    );
    assert!(st.forwarded <= st.packets);
    // every record belongs to a known service and client
    for r in &result.records {
        assert!(r.service < 200);
        assert!(r.client < 40);
        assert!(r.finished > r.started);
    }
    // simulation speed: a 10-minute scenario should simulate in seconds
    assert!(
        wall.as_secs() < 30,
        "10k-request sim took {wall:?} — performance regression?"
    );
}

#[test]
fn saturated_edge_degrades_to_cloud_not_to_loss() {
    // The paper-scale single EGS can hold 48 nginx instances; requesting 200
    // services must not lose requests — the surplus is served by the cloud.
    let cfg = TraceConfig {
        services: 200,
        total_requests: 4_000,
        duration: SimDuration::from_secs(300),
        min_per_service: 10,
        clients: 40,
        ..TraceConfig::default()
    };
    let trace = Trace::generate(cfg, &mut SimRng::seed_from_u64(3));
    let scenario = ScenarioConfig {
        clients: 40,
        seed: 3,
        ..ScenarioConfig::default()
    };
    let result = run_trace_scenario(scenario, &trace);
    assert_eq!(result.records.len(), 4_000);
    assert_eq!(result.lost, 0);
    assert!(result.deployments.len() < 200, "the edge saturates");
    assert!(result.cloud_forwards > 0, "overflow goes to the cloud");
}

#[test]
fn large_run_is_deterministic() {
    let make = || {
        let cfg = TraceConfig {
            services: 100,
            total_requests: 5_000,
            duration: SimDuration::from_secs(300),
            min_per_service: 10,
            clients: 30,
            ..TraceConfig::default()
        };
        let trace = Trace::generate(cfg, &mut SimRng::seed_from_u64(7));
        let scenario = ScenarioConfig {
            clients: 30,
            seed: 7,
            ..ScenarioConfig::default()
        };
        let testbed = Testbed::build(scenario, trace.service_addrs.clone());
        testbed.run_trace(&trace)
    };
    let a = make();
    let b = make();
    assert_eq!(a.records, b.records);
    assert_eq!(a.switch_stats, b.switch_stats);
    assert_eq!(a.deployments.len(), b.deployments.len());
}
