//! Cross-crate integration: a YAML service definition travels the whole
//! pipeline — parse → annotate → register → on-demand deploy → measured
//! client request — across both backends.

use transparent_edge::*;

use cluster::ClusterKind;
use edgectl::{annotate, AnnotateOptions};
use simnet::{IpAddr, SocketAddr};
use testbed::{PhaseSetup, ScenarioConfig, Testbed};

#[test]
fn yaml_definition_to_served_request() {
    // Definition with explicit resources and a container port.
    let src = r#"
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          resources:
            requests:
              cpu: 250m
              memory: 128Mi
"#;
    let doc = yamlite::parse(src).unwrap();
    let annotated = annotate(&doc, &AnnotateOptions::new("edge-nginx-it", 80)).unwrap();
    assert_eq!(annotated.template.name, "edge-nginx-it");
    assert_eq!(annotated.template.port, 80);

    // Run it through a testbed manually: build with one address, then
    // verify the first request deploys and completes.
    let addr = SocketAddr::new(IpAddr::new(93, 184, 0, 7), 80);
    let cfg = ScenarioConfig::default()
        .with_phase(PhaseSetup::ImagesCached)
        .with_seed(99);
    let testbed = Testbed::build(cfg, vec![addr]);
    let result = testbed.run_single_request();
    assert_eq!(result.records.len(), 1);
    assert_eq!(result.deployments.len(), 1);
    let dep = &result.deployments[0];
    assert!(dep.pull.is_none(), "images pre-cached");
    assert!(dep.create.is_some());
    assert!(dep.scale_up.is_some());
}

#[test]
fn annotated_yaml_survives_emit_parse_annotate_again() {
    // Annotation must be idempotent through serialization: emit the
    // annotated deployment, parse it back, annotate again with the same
    // options — nothing changes.
    let doc = yamlite::parse("image: nginx:1.23.2\n").unwrap();
    let opts = AnnotateOptions::new("edge-idem", 80);
    let once = annotate(&doc, &opts).unwrap();
    let text = yamlite::to_string(&once.deployment);
    let reparsed = yamlite::parse(&text).unwrap();
    let twice = annotate(&reparsed, &opts).unwrap();
    assert_eq!(once.deployment, twice.deployment);
    assert_eq!(once.service, twice.service);
}

#[test]
fn same_definition_deploys_on_both_backends() {
    for backend in [ClusterKind::Docker, ClusterKind::Kubernetes] {
        let addr = SocketAddr::new(IpAddr::new(93, 184, 0, 8), 80);
        let cfg = ScenarioConfig::default()
            .with_backend(backend)
            .with_phase(PhaseSetup::ImagesCached)
            .with_seed(5);
        let testbed = Testbed::build(cfg, vec![addr]);
        let result = testbed.run_single_request();
        assert_eq!(result.records.len(), 1, "{backend}: request answered");
        assert_eq!(result.deployments.len(), 1, "{backend}: one deployment");
        assert_eq!(result.lost, 0, "{backend}: nothing lost");
    }
}

#[test]
fn deployment_totals_ordered_docker_faster_than_k8s() {
    let run = |backend| {
        let addr = SocketAddr::new(IpAddr::new(93, 184, 0, 9), 80);
        let cfg = ScenarioConfig::default()
            .with_backend(backend)
            .with_phase(PhaseSetup::Created)
            .with_seed(11);
        let result = Testbed::build(cfg, vec![addr]).run_single_request();
        result.records[0].time_total()
    };
    let docker = run(ClusterKind::Docker);
    let k8s = run(ClusterKind::Kubernetes);
    assert!(
        k8s > docker * 3,
        "K8s ({k8s}) must be several times slower than Docker ({docker})"
    );
}

#[test]
fn workspace_reexports_compile_and_link() {
    // The umbrella crate exposes every subsystem.
    let _ = simcore::SimTime::ZERO;
    let _ = simnet::IpAddr::new(1, 2, 3, 4);
    let _ = containers::ImageRef::new("x");
    let _ = registry::RegistryProfile::private_lan();
    let _ = workload::ServiceKind::Nginx;
    let _ = yamlite::parse("a: 1").unwrap();
}
