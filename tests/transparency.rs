//! The transparency invariant (paper §II, Fig. 2): to the client, every
//! exchange looks like a cloud access. The switch must rewrite the
//! destination on the way in and restore the cloud address on the way out.

use cluster::{DockerCluster, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use edgectl::{Controller, ControllerConfig, ControllerOutput, NearestWaiting};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{PacketVerdict, PortId, Switch};
use simnet::{IpAddr, Packet, Protocol, SocketAddr};

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

#[test]
fn round_trip_is_transparent_to_the_client() {
    let cloud_addr = SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80);
    let client = SocketAddr::new(IpAddr::new(10, 1, 0, 1), 40000);

    let mut switch = Switch::new(8);
    let mut controller = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(PortId(0))
        .build();
    let rng = SimRng::seed_from_u64(1);
    controller.attach_cluster(
        Box::new(DockerCluster::new(
            "edge",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("rt")),
            rng.stream("d"),
        )),
        SimDuration::from_micros(300),
        PortId(2),
    );
    controller.catalog.register(
        cloud_addr,
        ServiceTemplate::single(
            "edge-nginx",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(100.0),
        ),
    );

    // First packet: miss → PacketIn → deployment → FlowMods + release.
    let syn = Packet::syn(client, cloud_addr, 1);
    let t0 = SimTime::ZERO;
    let PacketVerdict::PacketIn { buffer_id, packet } = switch.receive(t0, syn) else {
        panic!("first packet must miss");
    };
    let mut outputs = controller.on_packet_in(t0, packet, buffer_id, PortId(5));
    // The dispatcher finishes the deployment over discrete wakeups; drive
    // them like the simulator's event loop would until the machine drains.
    while !controller.in_flight_deployments(t0).is_empty() {
        let Some(at) = controller.next_wakeup() else {
            break;
        };
        outputs.extend(controller.on_wakeup(at));
    }
    let mut release_verdict = None;
    for o in outputs {
        match o {
            ControllerOutput::FlowMod { at, spec, .. } => {
                switch.flow_mod(at, spec);
            }
            ControllerOutput::ReleaseViaTable { at, buffer_id, .. } => {
                release_verdict = switch.packet_out_via_table(at, buffer_id);
            }
            ControllerOutput::DropBuffered { .. } => panic!("must not drop"),
            ControllerOutput::FlowDelete { .. } => panic!("no handover in this run"),
        }
    }

    // Outbound: destination rewritten to the edge instance, source intact.
    let Some(PacketVerdict::Forward {
        packet: fwd,
        out_port,
    }) = release_verdict
    else {
        panic!("released packet must forward, got {release_verdict:?}");
    };
    assert_eq!(out_port, PortId(2));
    assert_eq!(fwd.src, client, "client address untouched outbound");
    assert_ne!(fwd.dst, cloud_addr, "destination rewritten to the edge");
    let edge_instance = fwd.dst;

    // Return path: the edge instance answers from its own address; the
    // switch must rewrite it back to the cloud address before the client
    // sees it.
    let response = Packet {
        src: edge_instance,
        dst: client,
        protocol: Protocol::Tcp,
        size: 500,
        tag: 1,
    };
    let t1 = t0 + SimDuration::from_secs(5);
    match switch.receive(t1, response) {
        PacketVerdict::Forward { packet, out_port } => {
            assert_eq!(out_port, PortId(5), "back out the client's port");
            assert_eq!(
                packet.src, cloud_addr,
                "the client sees the cloud address, not {edge_instance}"
            );
            assert_eq!(packet.dst, client);
        }
        other => panic!("response must forward via the reverse flow, got {other:?}"),
    }

    // Subsequent request from the same client: pure data-plane hit, no
    // controller involvement.
    let misses_before = switch.stats.table_misses;
    match switch.receive(
        t1 + SimDuration::from_millis(1),
        Packet::syn(client, cloud_addr, 2),
    ) {
        PacketVerdict::Forward { packet, .. } => assert_eq!(packet.dst, edge_instance),
        other => panic!("second request must hit the flow, got {other:?}"),
    }
    assert_eq!(switch.stats.table_misses, misses_before);
}

#[test]
fn different_clients_get_independent_flows() {
    // Per-client matching means two clients can be redirected independently
    // (the paper's match includes the client address).
    let cloud_addr = SocketAddr::new(IpAddr::new(93, 184, 0, 2), 80);
    let a = SocketAddr::new(IpAddr::new(10, 1, 0, 1), 40000);
    let b = SocketAddr::new(IpAddr::new(10, 1, 0, 2), 40000);

    let mut switch = Switch::new(8);
    // Manually install a redirect for client A only.
    switch.flow_mod(
        SimTime::ZERO,
        simnet::FlowSpec::new(simnet::FlowMatch::client_to_service(a.ip, cloud_addr))
            .priority(100)
            .actions(vec![
                simnet::Action::SetDstIp(IpAddr::new(10, 0, 0, 100)),
                simnet::Action::SetDstPort(8000),
                simnet::Action::Output(PortId(2)),
            ]),
    );
    let t = SimTime::ZERO + SimDuration::from_millis(1);
    assert!(matches!(
        switch.receive(t, Packet::syn(a, cloud_addr, 1)),
        PacketVerdict::Forward { .. }
    ));
    assert!(
        matches!(
            switch.receive(t, Packet::syn(b, cloud_addr, 2)),
            PacketVerdict::PacketIn { .. }
        ),
        "client B's packet must go to the controller"
    );
}
