//! Fault tolerance end to end: instances crash mid-run and the platform
//! recovers — by kubelet self-healing on Kubernetes, or by the controller's
//! on-demand redeployment on plain Docker (the trade-off behind the paper's
//! §VII hybrid recommendation).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use cluster::ClusterKind;
use simcore::SimDuration;
use testbed::{run_bigflows, ScenarioConfig};

fn run(label: &str, backend: ClusterKind) {
    let mut cfg = ScenarioConfig::default()
        .with_seed(17)
        .with_backend(backend);
    cfg.crash_mtbf = Some(SimDuration::from_secs(15));
    let (_, r) = run_bigflows(cfg);
    let recoveries = r.deployments.len().saturating_sub(42);
    println!(
        "{label:<12} {} requests ({} lost), {} crashes injected, {} controller redeployments",
        r.records.len(),
        r.lost,
        r.crashes_injected,
        recoveries,
    );
}

fn main() {
    println!("Five-minute bigFlows replay with an instance crash every ~15 s:\n");
    run("Docker:", ClusterKind::Docker);
    run("Kubernetes:", ClusterKind::Kubernetes);
    println!(
        "\nDocker leaves crashed containers down, so the controller redeploys when the\n\
         next request arrives (on-demand deployment doubling as failure recovery).\n\
         Kubernetes restarts pods itself — few controller redeployments — at the\n\
         price of the ~3 s scale-up the paper measures in Fig. 11."
    );

    // Retry behaviour under a flaky control plane (transient API errors).
    println!("\nTransient API failures are retried with back-off (deploy_retries=2 default);");
    println!("see `cluster::faults::FaultyCluster` for the injection harness.");
}
