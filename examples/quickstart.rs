//! Quickstart: register an edge service from a Kubernetes-style YAML
//! definition, run the simulated C³ testbed, and watch the first request
//! trigger an on-demand deployment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edgectl::{annotate, AnnotateOptions};
use simnet::{IpAddr, SocketAddr};
use testbed::{PhaseSetup, ScenarioConfig, Testbed};

fn main() {
    // 1. A developer writes a minimal service definition — "the only
    //    mandatory data is the name of the image" (paper §V).
    let definition = "image: nginx:1.23.2\n";
    let doc = yamlite::parse(definition).expect("valid YAML");

    // 2. The platform annotates it: unique name, matchLabels, edge.service
    //    label, replicas: 0, and a generated Service object.
    let opts = AnnotateOptions::new("edge-nginx-web-000", 80);
    let annotated = annotate(&doc, &opts).expect("annotation succeeds");
    println!("--- annotated Deployment ---");
    println!("{}", yamlite::to_string(&annotated.deployment));
    println!("--- generated Service ---");
    println!("{}", yamlite::to_string(&annotated.service));

    // 3. Build the simulated testbed (EGS + OVS + 20 Raspberry Pi clients)
    //    with a Docker backend; nothing is deployed yet (Cold setup means
    //    the first request pays Pull + Create + Scale-Up).
    let cloud_addr: SocketAddr = SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80);
    let cfg = ScenarioConfig::default()
        .with_phase(PhaseSetup::Cold)
        .with_seed(42);
    let testbed = Testbed::build(cfg, vec![cloud_addr]);

    // 4. One client sends one request to the *cloud* address. The switch has
    //    no flow, the controller deploys on demand, the request waits.
    let result = testbed.run_single_request();
    let record = &result.records[0];
    println!("--- first request (client-perceived, timecurl semantics) ---");
    println!("time_total: {}", record.time_total());
    println!("triggered deployment: {}", record.triggered_deployment);

    let dep = &result.deployments[0];
    if let Some((a, b)) = dep.pull {
        println!("  Pull:      {}", b - a);
    }
    if let Some((a, b)) = dep.create {
        println!("  Create:    {}", b - a);
    }
    if let Some((issue, accepted, _)) = dep.scale_up {
        println!("  Scale-Up:  {} (API)", accepted - issue);
    }
    println!("  Wait:      {} (port polling)", dep.wait_time());
    println!("  Total:     {} from trigger to ready", dep.total());
    println!();
    println!(
        "With the image cached, the same service starts in well under a second on \
         Docker — run `cargo run -p bench --bin fig11` to sweep all four paper services."
    );
}
