//! Compare the Global Scheduler policies on the same workload: with
//! waiting, without waiting (cloud detour + background deployment), the
//! §VII hybrid (Docker first, Kubernetes after), and the load-aware
//! ablation policy.
//!
//! ```text
//! cargo run --release --example scheduler_playground
//! ```

use cluster::ClusterKind;
use simcore::Percentiles;
use testbed::{run_bigflows, ScenarioConfig, SchedulerSpec};

struct Row {
    name: &'static str,
    cfg: ScenarioConfig,
}

fn main() {
    let cases = vec![
        Row {
            name: "with waiting (Docker)",
            cfg: ScenarioConfig::default(),
        },
        Row {
            name: "with waiting (Kubernetes)",
            cfg: ScenarioConfig::default().with_backend(ClusterKind::Kubernetes),
        },
        Row {
            name: "without waiting (detour via cloud)",
            cfg: ScenarioConfig {
                scheduler: SchedulerSpec::nearest_ready_first(),
                ..ScenarioConfig::default()
            },
        },
        Row {
            name: "hybrid Docker-first + K8s",
            cfg: ScenarioConfig {
                scheduler: SchedulerSpec::hybrid_docker_first(),
                backends: vec![ClusterKind::Docker, ClusterKind::Kubernetes],
                ..ScenarioConfig::default()
            },
        },
        Row {
            name: "least-loaded (load-aware ablation)",
            cfg: ScenarioConfig {
                scheduler: SchedulerSpec::least_loaded(),
                ..ScenarioConfig::default()
            },
        },
    ];

    println!(
        "{:<36} {:>9} {:>9} {:>9} {:>6} {:>6} {:>6}",
        "policy", "median", "p99", "max", "held", "cloud", "deps"
    );
    for case in cases {
        let (_, result) = run_bigflows(case.cfg.with_seed(7));
        let mut p = Percentiles::new();
        for r in &result.records {
            p.record_duration(r.time_total());
        }
        println!(
            "{:<36} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>6} {:>6} {:>6}",
            case.name,
            p.median(),
            p.p99(),
            p.max(),
            result.held_requests,
            result.cloud_forwards,
            result.deployments.len(),
        );
    }
    println!();
    println!(
        "'held' = requests kept waiting at the switch during a deployment; 'cloud' = \
         requests answered by the real cloud; 'deps' = on-demand deployments performed."
    );
}
