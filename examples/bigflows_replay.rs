//! Replay the paper's five-minute workload (42 services, 1708 requests,
//! extracted from a real traffic capture) through the transparent edge and
//! print the request/deployment timelines of Figs. 9–10 plus the latency
//! split between deployment-triggering and steady-state requests.
//!
//! ```text
//! cargo run --release --example bigflows_replay
//! ```

use simcore::stats::ascii_bars;
use simcore::{SimDuration, SimTime, TimeSeries};
use testbed::{run_bigflows, ScenarioConfig};

fn main() {
    let cfg = ScenarioConfig::default().with_seed(2026);
    let (trace, result) = run_bigflows(cfg);

    println!(
        "bigFlows-like replay: {} requests to {} services over {}s",
        trace.requests.len(),
        trace.service_addrs.len(),
        trace.config.duration.as_secs(),
    );
    println!();

    // Fig. 9: requests per 30 s bucket.
    let mut req_ts = TimeSeries::new(SimDuration::from_secs(30), trace.config.duration);
    for r in &trace.requests {
        req_ts.record(r.at);
    }
    let rows: Vec<(String, f64)> = req_ts
        .points()
        .map(|(t, c)| (format!("t={t:>3.0}s"), c as f64))
        .collect();
    println!("requests per 30 s (Fig. 9):");
    print!("{}", ascii_bars(&rows, 40));
    println!();

    // Fig. 10: deployments per 15 s bucket (relative to trace start).
    let mut dep_ts = TimeSeries::new(SimDuration::from_secs(15), trace.config.duration);
    for d in &result.deployments {
        let rel = d.triggered_at - (SimTime::ZERO + result.trace_offset);
        dep_ts.record(SimTime::ZERO + rel);
    }
    let rows: Vec<(String, f64)> = dep_ts
        .points()
        .map(|(t, c)| (format!("t={t:>3.0}s"), c as f64))
        .collect();
    println!(
        "deployments per 15 s (Fig. 10): total {}",
        result.deployments.len()
    );
    print!("{}", ascii_bars(&rows, 40));
    println!();

    // Latency split.
    let first: Vec<f64> = result
        .records
        .iter()
        .filter(|r| r.triggered_deployment)
        .map(|r| r.time_total().as_millis_f64())
        .collect();
    let warm: Vec<f64> = result
        .records
        .iter()
        .filter(|r| !r.triggered_deployment)
        .map(|r| r.time_total().as_millis_f64())
        .collect();
    let med = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    println!(
        "deployment-triggering requests: {:>5}  median {:>8.1} ms",
        first.len(),
        med(first)
    );
    println!(
        "steady-state requests:          {:>5}  median {:>8.1} ms",
        warm.len(),
        med(warm)
    );
    println!();
    // Latency CDF over all requests — sub-ms steady state with a cold-start
    // tail around the Docker scale-up time.
    let mut hist = simcore::LogHistogram::new(1.0, 4.0, 8);
    for r in &result.records {
        hist.record_duration(r.time_total());
    }
    println!("latency CDF (time_total):");
    for (edge, frac) in hist.cdf() {
        if edge.is_finite() {
            println!("  <= {edge:>7.0} ms : {:>5.1} %", frac * 100.0);
        } else {
            println!("   > rest      : {:>5.1} %", frac * 100.0);
        }
        if frac >= 1.0 {
            break;
        }
    }
    println!();
    println!(
        "switch: {} packets, {} table hits, {} misses (PacketIns to the controller)",
        result.switch_stats.packets,
        result.switch_stats.table_hits,
        result.switch_stats.table_misses
    );
    println!(
        "controller: {} memory fast-path hits, {} held requests, {} cloud forwards",
        result.memory_hits, result.held_requests, result.cloud_forwards
    );
}
