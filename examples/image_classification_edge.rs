//! The paper's motivating heavyweight workload: TensorFlow-Serving with a
//! ResNet50 model at the edge. Clients POST an 83 KiB picture; the service
//! loads its model for seconds at startup, so the deployment strategy
//! matters much more than for the small web servers.
//!
//! ```text
//! cargo run --release --example image_classification_edge
//! ```

use cluster::ClusterKind;
use testbed::{measure_first_request, PhaseSetup, ScenarioConfig, SchedulerSpec};
use workload::ServiceKind;

fn measure(label: &str, cfg: ScenarioConfig) {
    let (ms, dep) = measure_first_request(cfg);
    let dep_note = match dep {
        Some(d) => format!(
            "(deployment: total {} — wait alone {})",
            d.total(),
            d.wait_time()
        ),
        None => "(no deployment needed)".to_string(),
    };
    println!("{label:<46} {ms:>10.1} ms  {dep_note}");
}

fn main() {
    println!("ResNet50 image classification at the edge (83 KiB POST per request)\n");

    // Already running: only the inference cost remains — this is what the
    // edge buys you once the instance is warm (paper Fig. 16).
    measure(
        "instance already running",
        ScenarioConfig::default()
            .with_service(ServiceKind::ResNet)
            .with_phase(PhaseSetup::Running)
            .with_seed(1),
    );

    // Scale-up only (image cached, service created): the model load
    // dominates — the wait time alone exceeds a fourth of the total
    // (paper Fig. 14).
    measure(
        "on-demand, scale-up only (Docker)",
        ScenarioConfig::default()
            .with_service(ServiceKind::ResNet)
            .with_phase(PhaseSetup::Created)
            .with_seed(1),
    );
    measure(
        "on-demand, scale-up only (Kubernetes)",
        ScenarioConfig::default()
            .with_service(ServiceKind::ResNet)
            .with_backend(ClusterKind::Kubernetes)
            .with_phase(PhaseSetup::Created)
            .with_seed(1),
    );

    // Cold: the 308 MiB image must be pulled from GCR first.
    measure(
        "cold start incl. pull from GCR",
        ScenarioConfig::default()
            .with_service(ServiceKind::ResNet)
            .with_phase(PhaseSetup::Cold)
            .with_seed(1),
    );
    let mut lan = ScenarioConfig::default()
        .with_service(ServiceKind::ResNet)
        .with_phase(PhaseSetup::Cold)
        .with_seed(1);
    lan.private_registry = true;
    measure("cold start incl. pull from private registry", lan);

    // Without waiting: the first request detours to the cloud while the edge
    // instance deploys — for a service this heavy, that is the paper's
    // recommended strategy (§VII).
    let mut detour = ScenarioConfig::default()
        .with_service(ServiceKind::ResNet)
        .with_phase(PhaseSetup::Created)
        .with_seed(1);
    detour.scheduler = SchedulerSpec::nearest_ready_first();
    measure("without waiting (first request via cloud)", detour);

    println!(
        "\nTakeaway: holding the first request is fine for sub-second services, but a \
         model-loading service wants 'without waiting' — serve the first request \
         elsewhere, flip the flows when the edge instance is ready."
    );
}
